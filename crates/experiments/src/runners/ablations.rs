//! Ablations of DESIGN.md's called-out design choices.

use crate::output::{f, pct, Table};
use crate::scenario::{DefenseKind, ExpOptions, Scenario};
use ddp_police::{DdPoliceConfig, ExchangePolicy};
use ddp_workload::LifetimeModel;
use rayon::prelude::*;

fn damage_row(
    opts: &ExpOptions,
    ci: usize,
    scenario: impl Fn(u64) -> Scenario,
) -> (f64, f64, f64, f64) {
    let mut fneg = 0.0;
    let mut fpos = 0.0;
    let mut damage = 0.0;
    let mut control = 0.0;
    for r in 0..opts.replicates {
        let dr = scenario(opts.seed_for(ci, r)).run_with_damage();
        fneg += dr.attacked.summary.errors.false_negative as f64;
        fpos += dr.attacked.summary.errors.false_positive as f64;
        damage += dr.stable_damage();
        control += dr.attacked.summary.control_per_tick;
    }
    let n = opts.replicates.max(1) as f64;
    (fneg / n, fpos / n, damage / n, control / n)
}

/// Warning-threshold sweep (the §3.3 default is 500 queries/min): too low
/// triggers constant Buddy-Group exchanges; too high delays detection.
pub fn ablate_warning(opts: &ExpOptions) -> Table {
    let thresholds = [100u32, 250, 500, 1_000, 2_000, 5_000];
    let rows: Vec<Vec<String>> = thresholds
        .par_iter()
        .enumerate()
        .map(|(ci, &w)| {
            let (fneg, fpos, damage, control) = damage_row(opts, ci, |seed| {
                let cfg = DdPoliceConfig { warning_threshold_qpm: w, ..DdPoliceConfig::default() };
                Scenario::builder()
                    .peers(opts.peers)
                    .ticks(opts.ticks)
                    .attackers(opts.agents)
                    .defense(DefenseKind::DdPoliceFull(cfg))
                    .seed(seed)
                    .build()
            });
            vec![w.to_string(), f(fneg, 1), f(fpos, 1), pct(damage), f(control, 0)]
        })
        .collect();
    let mut t = Table::new(
        "ablate_warning_threshold",
        format!("Ablation: warning threshold ({} agents)", opts.agents),
        &[
            "warning q/min",
            "false negative",
            "false positive",
            "stable damage",
            "control msgs/tick",
        ],
    );
    for row in rows {
        t.push_row(row);
    }
    t
}

/// Buddy-Group radius r ∈ {1, 2} under *heavy* churn (mean lifetime 5 min):
/// r = 2's cross-verified membership resists snapshot staleness.
pub fn ablate_radius(opts: &ExpOptions) -> Table {
    let rows: Vec<Vec<String>> = [1u8, 2]
        .par_iter()
        .enumerate()
        .map(|(ci, &radius)| {
            let (fneg, fpos, damage, _) = damage_row(opts, ci, |seed| {
                let cfg = DdPoliceConfig {
                    radius,
                    exchange: ExchangePolicy::Periodic { minutes: 4 }, // extra staleness
                    ..DdPoliceConfig::default()
                };
                let sim = ddp_sim::SimConfig {
                    topology: ddp_topology::TopologyConfig {
                        n: opts.peers,
                        model: ddp_topology::TopologyModel::BarabasiAlbert { m: 3 },
                    },
                    lifetime: LifetimeModel::LogNormal { mean_min: 5.0, var_min: 2.5 },
                    ..ddp_sim::SimConfig::default()
                };
                Scenario::builder()
                    .sim_config(sim)
                    .ticks(opts.ticks)
                    .attackers(opts.agents)
                    .defense(DefenseKind::DdPoliceFull(cfg))
                    .seed(seed)
                    .build()
            });
            vec![format!("r={radius}"), f(fneg, 1), f(fpos, 1), pct(damage)]
        })
        .collect();
    let mut t = Table::new(
        "ablate_bg_radius",
        format!("Ablation: Buddy-Group radius under heavy churn ({} agents)", opts.agents),
        &["radius", "false negative", "false positive", "stable damage"],
    );
    for row in rows {
        t.push_row(row);
    }
    t
}

/// Forwarding-policy comparison: plain FIFO vs the fair-share survival
/// baseline (the paper's related work \[21\]) vs DD-POLICE detection.
pub fn ablate_forwarding(opts: &ExpOptions) -> Table {
    let configs: Vec<(&str, DefenseKind)> = vec![
        ("fifo, no defense", DefenseKind::None),
        ("fair-share forwarding", DefenseKind::FairShare),
        ("DD-POLICE (CT=5)", DefenseKind::DdPolice { cut_threshold: 5.0 }),
    ];
    let rows: Vec<Vec<String>> = configs
        .par_iter()
        .enumerate()
        .map(|(ci, (label, defense))| {
            let mut success = 0.0;
            let mut response = 0.0;
            let mut damage = 0.0;
            for r in 0..opts.replicates {
                let dr = Scenario::builder()
                    .peers(opts.peers)
                    .ticks(opts.ticks)
                    .attackers(opts.agents)
                    .defense(defense.clone())
                    .seed(opts.seed_for(ci, r))
                    .build()
                    .run_with_damage();
                success += dr.attacked.summary.success_rate_stable;
                response += dr.attacked.summary.response_time_mean_secs;
                damage += dr.stable_damage();
            }
            let n = opts.replicates.max(1) as f64;
            vec![label.to_string(), pct(success / n), f(response / n, 2), pct(damage / n)]
        })
        .collect();
    let mut t = Table::new(
        "ablate_forwarding_policy",
        format!("Baseline comparison: forwarding policy vs detection ({} agents)", opts.agents),
        &["configuration", "stable success", "response (s)", "stable damage"],
    );
    for row in rows {
        t.push_row(row);
    }
    t
}

/// Attacker-rejoin extension (§3.7.2 notes nothing stops agents from coming
/// back): how the rejoin delay changes steady-state damage under DD-POLICE.
pub fn ablate_rejoin(opts: &ExpOptions) -> Table {
    let delays: Vec<(String, u32)> = vec![
        ("never (paper)".into(), u32::MAX),
        ("10 min".into(), 10),
        ("5 min".into(), 5),
        ("2 min".into(), 2),
    ];
    let rows: Vec<Vec<String>> = delays
        .par_iter()
        .enumerate()
        .map(|(ci, (label, delay))| {
            let mut damage = 0.0;
            let mut cuts = 0.0;
            for r in 0..opts.replicates {
                let sim = ddp_sim::SimConfig {
                    topology: ddp_topology::TopologyConfig {
                        n: opts.peers,
                        model: ddp_topology::TopologyModel::BarabasiAlbert { m: 3 },
                    },
                    attacker_rejoin_delay_ticks: *delay,
                    ..ddp_sim::SimConfig::default()
                };
                let dr = Scenario::builder()
                    .sim_config(sim)
                    .ticks(opts.ticks)
                    .attackers(opts.agents)
                    .defense(DefenseKind::DdPolice { cut_threshold: 5.0 })
                    .seed(opts.seed_for(ci, r))
                    .build()
                    .run_with_damage();
                damage += dr.stable_damage();
                cuts += dr.attacked.summary.attackers_cut as f64;
            }
            let n = opts.replicates.max(1) as f64;
            vec![label.clone(), pct(damage / n), f(cuts / n, 0)]
        })
        .collect();
    let mut t = Table::new(
        "ablate_attacker_rejoin",
        format!("Extension: attacker rejoin delay ({} agents, DD-POLICE CT=5)", opts.agents),
        &["rejoin delay", "stable damage", "attacker cut events"],
    );
    for row in rows {
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ExpOptions {
        ExpOptions { peers: 240, ticks: 6, seed: 19, agents: 10, ..ExpOptions::default() }
    }

    #[test]
    fn warning_ablation_renders_all_thresholds() {
        assert_eq!(ablate_warning(&tiny_opts()).rows.len(), 6);
    }

    #[test]
    fn radius_ablation_has_two_rows() {
        assert_eq!(ablate_radius(&tiny_opts()).rows.len(), 2);
    }

    #[test]
    fn forwarding_ablation_shows_ddpolice_best() {
        let t = ablate_forwarding(&tiny_opts());
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let fifo = parse(&t.rows[0][3]);
        let police = parse(&t.rows[2][3]);
        assert!(police < fifo, "DD-POLICE damage {police}% must beat undefended {fifo}%");
    }

    #[test]
    fn rejoin_ablation_renders() {
        assert_eq!(ablate_rejoin(&tiny_opts()).rows.len(), 4);
    }
}

/// Hardening study: the collusive-inflation attack (a reproduction finding;
/// §3.4's Case 1 assumed a lone agent) vs the link-capacity report clamp.
pub fn ablate_clamp(opts: &ExpOptions) -> Table {
    use ddp_attack::CheatStrategy;
    let configs: Vec<(&str, CheatStrategy, bool)> = vec![
        ("honest agents, no clamp", CheatStrategy::Honest, false),
        ("inflating agents, no clamp", CheatStrategy::InflateSent, false),
        ("inflating agents, clamp on", CheatStrategy::InflateSent, true),
    ];
    let rows: Vec<Vec<String>> = configs
        .par_iter()
        .map(|(label, cheat, clamp)| {
            let mut damage = 0.0;
            let mut never = 0.0;
            for r in 0..opts.replicates {
                let cfg =
                    DdPoliceConfig { clamp_reports_to_link: *clamp, ..DdPoliceConfig::default() };
                let dr = Scenario::builder()
                    .peers(opts.peers)
                    .ticks(opts.ticks)
                    .attackers(opts.agents)
                    .cheat(*cheat)
                    .defense(DefenseKind::DdPoliceFull(cfg))
                    .seed(opts.seed_for(0, r))
                    .build()
                    .run_with_damage();
                damage += dr.stable_damage();
                never += dr.attacked.summary.attackers_never_cut as f64;
            }
            let n = opts.replicates.max(1) as f64;
            vec![label.to_string(), pct(damage / n), f(never / n, 1)]
        })
        .collect();
    let mut t = Table::new(
        "ablate_report_clamp",
        format!(
            "Hardening: link-capacity report clamp vs collusive inflation ({} agents)",
            opts.agents
        ),
        &["configuration", "stable damage", "agents never cut"],
    );
    for row in rows {
        t.push_row(row);
    }
    t
}

/// §3.1 list-lying study: padding / omission / refusal, with and without the
/// consistency check.
pub fn ablate_lists(opts: &ExpOptions) -> Table {
    use ddp_sim::ListBehavior;
    let behaviors: Vec<(&str, ListBehavior)> = vec![
        ("truthful", ListBehavior::Truthful),
        ("pad 20 phantoms", ListBehavior::PadFake { extra: 20 }),
        ("omit all", ListBehavior::Omit),
        ("refuse exchange", ListBehavior::Refuse),
    ];
    let rows: Vec<Vec<String>> = behaviors
        .par_iter()
        .flat_map(|(label, lists)| {
            [true, false].into_par_iter().map(move |verify| {
                let mut damage = 0.0;
                let mut never = 0.0;
                let mut fneg = 0.0;
                for r in 0..opts.replicates {
                    let cfg = DdPoliceConfig { verify_lists: verify, ..DdPoliceConfig::default() };
                    let dr = Scenario::builder()
                        .peers(opts.peers)
                        .ticks(opts.ticks)
                        .attackers(opts.agents)
                        .lists(*lists)
                        .defense(DefenseKind::DdPoliceFull(cfg))
                        .seed(opts.seed_for(0, r))
                        .build()
                        .run_with_damage();
                    damage += dr.stable_damage();
                    never += dr.attacked.summary.attackers_never_cut as f64;
                    fneg += dr.attacked.summary.errors.false_negative as f64;
                }
                let n = opts.replicates.max(1) as f64;
                vec![
                    label.to_string(),
                    if verify { "on" } else { "off" }.to_string(),
                    pct(damage / n),
                    f(never / n, 1),
                    f(fneg / n, 1),
                ]
            })
        })
        .collect();
    let mut t = Table::new(
        "ablate_list_lying",
        format!(
            "Section 3.1: neighbor-list lying vs the consistency check ({} agents)",
            opts.agents
        ),
        &[
            "agent list behavior",
            "consistency check",
            "stable damage",
            "agents never cut",
            "good peers cut",
        ],
    );
    for row in rows {
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod hardening_tests {
    use super::*;

    fn tiny_opts() -> ExpOptions {
        ExpOptions { peers: 240, ticks: 6, seed: 19, agents: 10, ..ExpOptions::default() }
    }

    #[test]
    fn clamp_ablation_renders_three_rows() {
        let t = ablate_clamp(&tiny_opts());
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn clamp_reduces_collusion_damage() {
        let t = ablate_clamp(&tiny_opts());
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let unclamped = parse(&t.rows[1][1]);
        let clamped = parse(&t.rows[2][1]);
        assert!(
            clamped <= unclamped,
            "the clamp must not make collusion damage worse: {clamped}% vs {unclamped}%"
        );
    }

    #[test]
    fn list_ablation_covers_all_behaviors_twice() {
        let t = ablate_lists(&tiny_opts());
        assert_eq!(t.rows.len(), 8);
    }
}

/// Topology-model ablation: flat Gnutella (BA), uniform control (ER), and
/// the two-tier super-peer architecture §1 mentions ("among peers or among
/// super-peers"), under the same attack and defense.
pub fn ablate_topology(opts: &ExpOptions) -> Table {
    use ddp_topology::{TopologyConfig, TopologyModel};
    let models: Vec<(&str, TopologyModel)> = vec![
        ("flat BA (paper)", TopologyModel::BarabasiAlbert { m: 3 }),
        ("Erdos-Renyi d=6", TopologyModel::ErdosRenyi { mean_degree: 6.0 }),
        ("super-peer 20%", TopologyModel::SuperPeer { super_fraction: 0.2, core_m: 3 }),
    ];
    let rows: Vec<Vec<String>> = models
        .par_iter()
        .map(|(label, model)| {
            let mut undef = 0.0;
            let mut def = 0.0;
            let mut fneg = 0.0;
            for r in 0..opts.replicates {
                let sim = ddp_sim::SimConfig {
                    topology: TopologyConfig { n: opts.peers, model: *model },
                    ..ddp_sim::SimConfig::default()
                };
                let mk = |defense: DefenseKind, sim: ddp_sim::SimConfig| {
                    Scenario::builder()
                        .sim_config(sim)
                        .ticks(opts.ticks)
                        .attackers(opts.agents)
                        .defense(defense)
                        .seed(opts.seed_for(0, r))
                        .build()
                        .run_with_damage()
                };
                let u = mk(DefenseKind::None, sim.clone());
                let d = mk(DefenseKind::DdPolice { cut_threshold: 5.0 }, sim);
                undef += u.stable_damage();
                def += d.stable_damage();
                fneg += d.attacked.summary.errors.false_negative as f64;
            }
            let n = opts.replicates.max(1) as f64;
            vec![label.to_string(), pct(undef / n), pct(def / n), f(fneg / n, 1)]
        })
        .collect();
    let mut t = Table::new(
        "ablate_topology",
        format!("Ablation: overlay architecture under the same attack ({} agents)", opts.agents),
        &["topology", "undefended damage", "DD-POLICE damage", "good peers cut"],
    );
    for row in rows {
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod topology_tests {
    use super::*;

    #[test]
    fn topology_ablation_renders_all_models() {
        let opts =
            ExpOptions { peers: 240, ticks: 5, seed: 31, agents: 10, ..ExpOptions::default() };
        let t = ablate_topology(&opts);
        assert_eq!(t.rows.len(), 3);
    }
}
