//! Chaos soak: crash-recovery continuity on the wire.
//!
//! Three phases over the same topology and attack:
//!
//! 1. **wire-baseline** — an undisturbed mesh of real `ddp-servent`
//!    processes; its first-cut time anchors the continuity bound.
//! 2. **wire-soak** — the same mesh with checkpointing on, soaked under a
//!    seeded [`ChaosSchedule`] (a spare servent SIGKILL'd and restarted,
//!    proxied edges severed/stalled and healed), and the decisive fault:
//!    the victim — the attacker's buddy that cut it — is SIGKILL'd *after*
//!    the cut and restarted from its checkpoint. Detection must survive the
//!    crash: the resumed victim still has the attacker cut (at its original
//!    pre-crash time — restored state, not re-detection) and never
//!    readmits it.
//! 3. **corrupt-resume** — a servent pointed at a bit-flipped checkpoint
//!    must degrade to a logged cold start (`resume_error` names the
//!    [`SnapshotError`](ddp_snapshot::SnapshotError) variant), not panic.
//!
//! Needs the `ddp-servent` binary (same profile, or `DDP_SERVENT_BIN`).

use crate::output::Table;
use crate::scenario::ExpOptions;
use ddp_servent::wire::WireSummary;
use ddp_servent::ServentRole;
use ddp_testbed::{locate_servent_bin, ChaosPlan, ChaosSchedule, MeshSpec, NodeSpec, WireMesh};
use ddp_topology::{NodeId, TopologyConfig, TopologyModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::time::{Duration, Instant};

const ATTACK_QPM: u32 = 1_500;
const QUERY_RATE_QPM: f64 = 2.0;
/// Protocol second the victim is killed at. Detection needs two report
/// rounds (~t=110); killing well after that guarantees the cut is in the
/// victim's checkpoint history when it dies.
const KILL_TICK: u64 = 150;
/// Continuity bound: first cut under chaos may not drift further than this
/// from the chaos-free run (protocol seconds).
const MAX_CUT_DELTA_S: u64 = 60;

struct SoakRow {
    phase: &'static str,
    first_cut_s: Option<u64>,
    cut_delta_s: Option<i64>,
    victim_generation: Option<u32>,
    victim_cut_intact: &'static str,
    resume_error: String,
    completed: String,
    wall_s: f64,
}

impl SoakRow {
    fn into_row(self) -> Vec<String> {
        vec![
            self.phase.to_string(),
            self.first_cut_s.map_or_else(|| "-".into(), |t| t.to_string()),
            self.cut_delta_s.map_or_else(|| "-".into(), |d| d.to_string()),
            self.victim_generation.map_or_else(|| "-".into(), |g| g.to_string()),
            self.victim_cut_intact.to_string(),
            if self.resume_error.is_empty() { "-".into() } else { self.resume_error },
            self.completed,
            format!("{:.1}", self.wall_s),
        ]
    }
}

/// Launch one standalone servent against a deliberately corrupted
/// checkpoint and report how it degraded. `src_snap` is a real checkpoint
/// from the soak mesh; one payload byte is flipped before the servent sees
/// it.
fn corrupt_resume(
    id: u32,
    src_snap: &Path,
    out_dir: &Path,
    seed: u64,
) -> Result<(WireSummary, f64), String> {
    let ckpt_dir = out_dir.join("ckpt");
    std::fs::create_dir_all(&ckpt_dir)
        .map_err(|e| format!("create {}: {e}", ckpt_dir.display()))?;
    let mut bytes =
        std::fs::read(src_snap).map_err(|e| format!("read {}: {e}", src_snap.display()))?;
    if bytes.len() < 16 {
        return Err(format!("checkpoint {} is implausibly small", src_snap.display()));
    }
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40; // one flipped bit, deep in the payload
    let snap = ckpt_dir.join(format!("s{id}.snap"));
    std::fs::write(&snap, &bytes).map_err(|e| format!("write {}: {e}", snap.display()))?;

    let bin = locate_servent_bin().map_err(|e| e.to_string())?;
    let addr = std::net::TcpListener::bind("127.0.0.1:0")
        .and_then(|l| l.local_addr())
        .map_err(|e| format!("reserve port: {e}"))?;
    let summary_path = out_dir.join("summary");
    let stderr_path = out_dir.join("stderr");
    let started = Instant::now();
    let mut child = std::process::Command::new(&bin)
        .args([
            "--id",
            &id.to_string(),
            "--listen",
            &addr.to_string(),
            "--peers",
            &format!("{id}={addr}"),
            "--neighbors",
            "",
            "--role",
            "good",
            "--minutes",
            "0",
            "--tick-ms",
            "10",
            "--seed",
            &seed.to_string(),
            "--checkpoint-every",
            "0",
        ])
        .arg("--resume-dir")
        .arg(&ckpt_dir)
        .arg("--out")
        .arg(&summary_path)
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(
            std::fs::File::create(&stderr_path)
                .map_err(|e| format!("create {}: {e}", stderr_path.display()))?,
        )
        .spawn()
        .map_err(|e| format!("spawn corrupt-resume servent: {e}"))?;

    // Bounded reap: a panic-free degrade is the whole point, but a hang must
    // fail the soak, not wedge it.
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) if Instant::now() >= deadline => {
                let _ = child.kill();
                let _ = child.wait();
                return Err("corrupt-resume servent hung past 30s".into());
            }
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    if !status.success() {
        return Err(format!("corrupt-resume servent exited with {status} (not a clean degrade)"));
    }
    let summary = WireSummary::read_file(&summary_path).map_err(|e| e.to_string())?;
    Ok((summary, started.elapsed().as_secs_f64()))
}

/// Crash-recovery soak table. `Err` carries a human-readable reason
/// (typically: the `ddp-servent` binary is not built, or a continuity
/// assertion failed).
pub fn soak(opts: &ExpOptions) -> Result<Table, String> {
    let (n, minutes, tick_ms, ckpt_every) =
        if opts.smoke { (10usize, 3u64, 30u64, 20u64) } else { (16, 4, 40, 25) };
    let attacker = NodeId(4);
    let role = ServentRole::FloodingAgent { rate_qpm: ATTACK_QPM, respond_reports: true };

    let graph = TopologyConfig { n, model: TopologyModel::BarabasiAlbert { m: 2 } }
        .generate(&mut StdRng::seed_from_u64(opts.seed));
    let edges: Vec<(u32, u32)> = graph.edges().map(|(u, v)| (u.0, v.0)).collect();
    let nodes: Vec<NodeSpec> = (0..n as u32)
        .map(|id| NodeSpec { id, role: if id == attacker.0 { role } else { ServentRole::Good } })
        .collect();

    // The victim: the attacker's highest-id good neighbor — a buddy that
    // will cut the attacker, and then gets killed for knowing too much.
    let victim = graph
        .neighbors(attacker)
        .iter()
        .map(|h| h.peer.0)
        .filter(|&p| p != attacker.0)
        .max()
        .ok_or("attacker has no neighbors in the generated graph")?;
    // A good-good edge away from both for sever/stall disturbances.
    let disturbed = edges
        .iter()
        .copied()
        .find(|&(u, v)| ![u, v].iter().any(|&x| x == attacker.0 || x == victim))
        .ok_or("no good-good edge available to disturb")?;
    // A spare good servent (not the victim, not touching the attacker or the
    // disturbed edge) for an extra kill+restart cycle, when one exists.
    let attacker_adj: Vec<u32> = graph.neighbors(attacker).iter().map(|h| h.peer.0).collect();
    let spare = (0..n as u32).find(|&id| {
        id != attacker.0
            && id != victim
            && !attacker_adj.contains(&id)
            && id != disturbed.0
            && id != disturbed.1
    });

    let mut table = Table::new(
        "soak_continuity",
        format!(
            "Crash-recovery soak — n={n}, BA m=2, attacker {attacker} at {ATTACK_QPM} qpm, \
             {minutes} min, tick {tick_ms} ms, checkpoint every {ckpt_every}s \
             (victim {victim} SIGKILL'd @t~{KILL_TICK}s after cutting the attacker, then \
             restarted from its checkpoint; spare {spare:?} cycled; edge {disturbed:?} \
             disturbed; continuity bound ±{MAX_CUT_DELTA_S}s)"
        ),
        &[
            "phase",
            "first_cut_s",
            "cut_delta_s",
            "victim_gen",
            "victim_cut_intact",
            "resume_error",
            "completed",
            "wall_s",
        ],
    );

    let out_base = std::env::temp_dir().join(format!("ddp-soak-{}", std::process::id()));
    let base_spec = MeshSpec {
        nodes,
        edges: edges.clone(),
        proxied_edges: vec![],
        minutes,
        tick_ms,
        seed: opts.seed,
        query_rate_qpm: QUERY_RATE_QPM,
        out_dir: out_base.join("baseline"),
        checkpoint_every: None,
    };

    // Phase 1: chaos-free anchor.
    let mesh = WireMesh::launch(base_spec.clone()).map_err(|e| format!("launch baseline: {e}"))?;
    let baseline = mesh.collect();
    if !baseline.hung.is_empty() {
        return Err(format!("baseline mesh hung: servents {:?}", baseline.hung));
    }
    let base_cut = baseline
        .first_cut_of(attacker.0)
        .ok_or("baseline: attacker was never cut — nothing to measure continuity against")?;
    table.push_row(
        SoakRow {
            phase: "wire-baseline",
            first_cut_s: Some(base_cut),
            cut_delta_s: None,
            victim_generation: baseline.summaries.get(&victim).map(|s| s.generation),
            victim_cut_intact: "-",
            resume_error: String::new(),
            completed: format!("{}/{n}", baseline.summaries.len()),
            wall_s: baseline.wall.as_secs_f64(),
        }
        .into_row(),
    );

    // Phase 2: the soak. Checkpointing on, seeded chaos in the window
    // before the decisive kill, then kill-after-cut and supervised restart.
    let mut soak_spec = base_spec;
    soak_spec.proxied_edges = vec![disturbed];
    soak_spec.out_dir = out_base.join("soak");
    soak_spec.checkpoint_every = Some(ckpt_every);
    let soak_dir = soak_spec.out_dir.clone();
    let mut mesh = WireMesh::launch(soak_spec).map_err(|e| format!("launch soak mesh: {e}"))?;

    // Protocol second t lands at roughly grace(500ms) + t*tick_ms wall time.
    let kill_at = Duration::from_millis(700 + KILL_TICK * tick_ms);
    let plan = ChaosPlan {
        kill_targets: spare.into_iter().collect(),
        proxied_edges: vec![disturbed],
        budget: kill_at.saturating_sub(Duration::from_millis(500)),
        kill_cycles: 1,
        disturbances: 2,
    };
    let schedule = ChaosSchedule::generate(opts.seed, &plan);
    let soak_started = Instant::now();
    for line in schedule.run(&mut mesh) {
        eprintln!("[soak] {line}");
    }
    let elapsed = soak_started.elapsed();
    if kill_at > elapsed {
        std::thread::sleep(kill_at - elapsed);
    }
    mesh.kill(victim).map_err(|e| format!("SIGKILL victim {victim}: {e}"))?;
    std::thread::sleep(Duration::from_millis(15 * tick_ms));
    let incarnation = mesh.restart(victim).map_err(|e| format!("restart victim {victim}: {e}"))?;
    eprintln!("[soak] victim {victim} restarted as incarnation {incarnation}");
    let soak = mesh.collect();
    if !soak.hung.is_empty() {
        return Err(format!("soak mesh hung: servents {:?}", soak.hung));
    }

    let soak_cut = soak.first_cut_of(attacker.0).ok_or("soak: attacker was never cut")?;
    let delta = soak_cut as i64 - base_cut as i64;
    let victim_summary = soak
        .summaries
        .get(&victim)
        .ok_or_else(|| format!("soak: restarted victim {victim} wrote no summary"))?;
    let victim_cut_at =
        victim_summary.cuts.iter().find(|&&(_, who)| who == attacker.0).map(|&(t, _)| t);
    let cut_intact = victim_cut_at.is_some_and(|t| t <= KILL_TICK)
        && !victim_summary.neighbors_final.contains(&attacker.0);
    table.push_row(
        SoakRow {
            phase: "wire-soak",
            first_cut_s: Some(soak_cut),
            cut_delta_s: Some(delta),
            victim_generation: Some(victim_summary.generation),
            victim_cut_intact: if cut_intact { "yes" } else { "NO" },
            resume_error: victim_summary.resume_error.clone(),
            completed: format!("{}/{n}", soak.summaries.len()),
            wall_s: soak.wall.as_secs_f64(),
        }
        .into_row(),
    );

    // Phase 3: a bit-flipped checkpoint must degrade to a logged cold start.
    let victim_snap = soak_dir.join("ckpt").join(format!("s{victim}.snap"));
    let (corrupt_summary, corrupt_wall) =
        corrupt_resume(victim, &victim_snap, &out_base.join("corrupt"), opts.seed)?;
    table.push_row(
        SoakRow {
            phase: "corrupt-resume",
            first_cut_s: None,
            cut_delta_s: None,
            victim_generation: Some(corrupt_summary.generation),
            victim_cut_intact: "-",
            resume_error: corrupt_summary.resume_error.clone(),
            completed: "1/1".into(),
            wall_s: corrupt_wall,
        }
        .into_row(),
    );

    // Acceptance: detection continuity across the crash.
    if victim_summary.generation == 0 {
        return Err(format!(
            "victim {victim} reports generation 0 — it cold-started instead of resuming \
             (resume_error: {:?})",
            victim_summary.resume_error
        ));
    }
    if !victim_summary.resume_error.is_empty() {
        return Err(format!(
            "victim {victim} resumed but logged resume_error {:?}",
            victim_summary.resume_error
        ));
    }
    if !cut_intact {
        return Err(format!(
            "no readmission-from-amnesia violated: resumed victim {victim} does not carry its \
             pre-crash cut of attacker {} (cut at {victim_cut_at:?}, neighbors_final {:?})",
            attacker.0, victim_summary.neighbors_final
        ));
    }
    if !soak.isolated(attacker.0) {
        return Err("soak: attacker not isolated among survivors".into());
    }
    if delta.unsigned_abs() > MAX_CUT_DELTA_S {
        return Err(format!(
            "continuity bound violated: first cut drifted {delta}s under chaos \
             (baseline {base_cut}s, soak {soak_cut}s, bound ±{MAX_CUT_DELTA_S}s)"
        ));
    }
    if corrupt_summary.resume_error != "ChecksumMismatch" {
        return Err(format!(
            "corrupt checkpoint surfaced resume_error {:?}, expected \"ChecksumMismatch\"",
            corrupt_summary.resume_error
        ));
    }
    if corrupt_summary.generation != 0 {
        return Err(format!(
            "corrupt checkpoint yielded generation {} — a cold start must be generation 0",
            corrupt_summary.generation
        ));
    }

    let _ = std::fs::remove_dir_all(&out_base);
    Ok(table)
}
