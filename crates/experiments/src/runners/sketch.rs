//! `sketch` — paired exact-vs-sketch sweep over sketch geometry × overlay
//! size × attacker rate.
//!
//! Every cell runs the *same* seeded simulation twice: once under the exact
//! per-neighbor counters and once under the count-min/space-saving monitor,
//! then compares monitor-state memory and cut outcomes. The quantity the
//! sweep pins is the memory/accuracy trade: how many bytes the sketch saves
//! at a given overlay size, and what that costs in missed attacker cuts
//! (none, by the overestimate-only construction) and spurious good-peer
//! cuts (the realized-overestimate tax). Emits `BENCH_sketch.json`.

use crate::output::{f, Table};
use crate::scenario::ExpOptions;
use ddp_attack::AttackPlan;
use ddp_metrics::{json_array, JsonObj};
use ddp_police::{DdPolice, DdPoliceConfig, MonitorBackend, SketchParams, SketchStats};
use ddp_sim::{RunResult, SimConfig, Simulation};
use ddp_sketch::exact_state_bytes;
use ddp_topology::{NodeId, TopologyConfig, TopologyModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::time::Instant;

/// One measured grid cell: a paired exact/sketch run at one configuration.
#[derive(Debug, Clone)]
pub struct SketchCell {
    /// Overlay size.
    pub peers: usize,
    /// Flooding-agent count.
    pub agents: usize,
    /// Attacker generation capability, queries/minute.
    pub attacker_rate_qpm: u32,
    /// Ticks (protocol minutes) both runs execute.
    pub ticks: usize,
    /// Flood TTL both runs use (4 at bench scale; 2 at ≥50k peers, where a
    /// TTL-4 flood saturates the overlay — see `flood_ttl`).
    pub ttl: u8,
    /// Count-min width exponent (width = 2^width_log2 columns per row).
    pub width_log2: u8,
    /// Count-min depth (rows).
    pub depth: u8,
    /// Space-saving heavy-hitter table capacity.
    pub topk: u16,
    /// Backend label of the sketch run (e.g. `sketch(w=2^12,d=4,k=64)`).
    pub monitor_backend: String,
    /// Monitor-state bytes the exact backend pays (2 u32 per directed
    /// half-edge of the final overlay).
    pub exact_state_bytes: u64,
    /// Monitor-state bytes the sketch backend pays (CMS arena + HH table).
    pub sketch_state_bytes: u64,
    /// exact / sketch — how many times smaller the sketch state is.
    pub memory_ratio: f64,
    /// Wall-clock of the sketch run's step loop, seconds.
    pub elapsed_secs: f64,
    /// Sketch-run step-loop throughput.
    pub ticks_per_sec: f64,
    /// Distinct attackers cut by the exact run.
    pub attackers_cut_exact: u64,
    /// Distinct attackers cut by the sketch run.
    pub attackers_cut_sketch: u64,
    /// Attackers the exact run cut that the sketch run did not — the
    /// accuracy headline; overestimate-only sketches keep this at zero.
    pub missed_cuts: u64,
    /// Good peers the sketch run cut that the exact run did not — the
    /// false-positive tax of the overestimates.
    pub extra_good_cuts: u64,
    /// Largest per-tick ingest `N` seen by the sketch run.
    pub items_max: u64,
    /// Worst realized estimate excess over the whole sketch run.
    pub max_excess: u64,
    /// The a-priori εN bound at the largest tick (ε = e / width).
    pub epsilon_n: f64,
}

impl SketchCell {
    fn to_json(&self) -> String {
        JsonObj::new()
            .u64("peers", self.peers as u64)
            .u64("agents", self.agents as u64)
            .u64("attacker_rate_qpm", self.attacker_rate_qpm as u64)
            .u64("ticks", self.ticks as u64)
            .u64("ttl", self.ttl as u64)
            .u64("width_log2", self.width_log2 as u64)
            .u64("depth", self.depth as u64)
            .u64("topk", self.topk as u64)
            .str("monitor_backend", &self.monitor_backend)
            .u64("exact_state_bytes", self.exact_state_bytes)
            .u64("sketch_state_bytes", self.sketch_state_bytes)
            .f64("memory_ratio", self.memory_ratio)
            .f64("elapsed_secs", self.elapsed_secs)
            .f64("ticks_per_sec", self.ticks_per_sec)
            .u64("attackers_cut_exact", self.attackers_cut_exact)
            .u64("attackers_cut_sketch", self.attackers_cut_sketch)
            .u64("missed_cuts", self.missed_cuts)
            .u64("extra_good_cuts", self.extra_good_cuts)
            .u64("items_max", self.items_max)
            .u64("max_excess", self.max_excess)
            .f64("epsilon_n", self.epsilon_n)
            .finish()
    }
}

/// Every key a cell object must carry, in emission order (the schema).
pub const SKETCH_CELL_KEYS: [&str; 21] = [
    "peers",
    "agents",
    "attacker_rate_qpm",
    "ticks",
    "ttl",
    "width_log2",
    "depth",
    "topk",
    "monitor_backend",
    "exact_state_bytes",
    "sketch_state_bytes",
    "memory_ratio",
    "elapsed_secs",
    "ticks_per_sec",
    "attackers_cut_exact",
    "attackers_cut_sketch",
    "missed_cuts",
    "extra_good_cuts",
    "items_max",
    "max_excess",
    "epsilon_n",
];

/// Schema identifier embedded in the emitted JSON.
pub const SKETCH_SCHEMA: &str = "ddp-bench-sketch/v1";

/// Cut outcome of one run, split by ground truth.
struct CutSets {
    attackers: BTreeSet<u32>,
    good: BTreeSet<u32>,
}

fn cut_sets(result: &RunResult) -> CutSets {
    let mut attackers = BTreeSet::new();
    let mut good = BTreeSet::new();
    for rec in &result.cut_log {
        if rec.suspect_was_attacker {
            attackers.insert(rec.suspect.0);
        } else {
            good.insert(rec.suspect.0);
        }
    }
    CutSets { attackers, good }
}

/// Outcome of a single run under one backend.
struct RunOutcome {
    result: RunResult,
    exact_bytes: u64,
    sketch_bytes: u64,
    stats: SketchStats,
    epsilon_n: f64,
    elapsed_secs: f64,
}

/// Flood TTL for a cell: the default 4 at bench scale, 2 at ≥50k peers.
/// At 100k peers a TTL-4 flood multiplies every query into thousands of
/// hops, and the count-min window's per-edge collision excess scales with
/// that total; the paper's own scaling argument (§2.3) caps flood reach on
/// large overlays, and TTL 2 keeps the monitored stream within the regime
/// where a ≤¼-memory sketch preserves every exact cut.
pub fn flood_ttl(peers: usize) -> u8 {
    if peers >= 50_000 {
        2
    } else {
        4
    }
}

/// Build, attack, and step one simulation under `monitor`; the same
/// `(seed, peers, agents)` triple yields the identical topology, attack
/// plan, and workload under both backends, so cut-set differences are
/// attributable to the monitor alone.
fn run_once(
    peers: usize,
    agents: usize,
    attacker_rate_qpm: u32,
    ticks: usize,
    monitor: MonitorBackend,
    seed: u64,
) -> RunOutcome {
    let cfg = SimConfig {
        topology: TopologyConfig { n: peers, model: TopologyModel::BarabasiAlbert { m: 3 } },
        attacker_rate_qpm,
        ttl: flood_ttl(peers),
        ..SimConfig::default()
    };
    let police_cfg = DdPoliceConfig { monitor, ..DdPoliceConfig::default() };
    let police = DdPolice::new(police_cfg, peers);
    let mut sim = Simulation::new(cfg, police, seed);
    if agents > 0 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdd05_ee1f);
        AttackPlan::new(agents).apply(&mut sim, &mut rng);
    }
    let start = Instant::now();
    for _ in 0..ticks {
        sim.step();
    }
    let elapsed_secs = start.elapsed().as_secs_f64();
    let half_edges: usize =
        (0..sim.overlay().node_count()).map(|u| sim.overlay().degree(NodeId(u as u32))).sum();
    let exact_bytes = exact_state_bytes(half_edges) as u64;
    let (sketch_bytes, stats, epsilon_n) = match sim.defense().sketch_monitor() {
        Some(m) => {
            let stats = sim.defense().sketch_stats();
            // ε = e / width, at the heaviest tick's N.
            let eps = if m.items_this_tick() > 0 { m.epsilon_n() } else { 0.0 };
            let eps_at_max = if stats.max_items_run > 0 && m.items_this_tick() > 0 {
                eps * stats.max_items_run as f64 / m.items_this_tick() as f64
            } else {
                eps
            };
            (m.state_bytes() as u64, stats, eps_at_max)
        }
        None => (0, SketchStats::default(), 0.0),
    };
    let result = sim.finish();
    RunOutcome { result, exact_bytes, sketch_bytes, stats, epsilon_n, elapsed_secs }
}

/// Measure one cell: the exact run, the sketch run, and their comparison.
#[allow(clippy::too_many_arguments)]
pub fn measure_sketch_cell(
    peers: usize,
    agents: usize,
    attacker_rate_qpm: u32,
    ticks: usize,
    width_log2: u8,
    depth: u8,
    topk: u16,
    seed: u64,
) -> SketchCell {
    let params =
        SketchParams { width_log2, depth, topk, salt: SketchParams::default().salt ^ seed };
    let backend = MonitorBackend::Sketch(params);
    let exact = run_once(peers, agents, attacker_rate_qpm, ticks, MonitorBackend::Exact, seed);
    let sketch = run_once(peers, agents, attacker_rate_qpm, ticks, backend, seed);
    let exact_cuts = cut_sets(&exact.result);
    let sketch_cuts = cut_sets(&sketch.result);
    let missed_cuts = exact_cuts.attackers.difference(&sketch_cuts.attackers).count() as u64;
    let extra_good_cuts = sketch_cuts.good.difference(&exact_cuts.good).count() as u64;
    let safe_elapsed = sketch.elapsed_secs.max(1e-9);
    SketchCell {
        peers,
        agents,
        attacker_rate_qpm,
        ticks,
        ttl: flood_ttl(peers),
        width_log2,
        depth,
        topk,
        monitor_backend: backend.label(),
        exact_state_bytes: sketch.exact_bytes.max(exact.exact_bytes),
        sketch_state_bytes: sketch.sketch_bytes,
        memory_ratio: sketch.exact_bytes as f64 / (sketch.sketch_bytes as f64).max(1.0),
        elapsed_secs: sketch.elapsed_secs,
        ticks_per_sec: ticks as f64 / safe_elapsed,
        attackers_cut_exact: exact_cuts.attackers.len() as u64,
        attackers_cut_sketch: sketch_cuts.attackers.len() as u64,
        missed_cuts,
        extra_good_cuts,
        items_max: sketch.stats.max_items_run,
        max_excess: sketch.stats.max_excess_run as u64,
        epsilon_n: sketch.epsilon_n,
    }
}

/// The sweep grid: `(peers, agents, attacker_rate_qpm, ticks, width_log2,
/// depth, topk)`. The smoke grid is two cells: a small overlay that detects
/// and cuts within the run (exercising the comparison end to end), and the
/// 100k-peer cell the memory-ratio acceptance is pinned on. The full grid
/// adds a geometry sweep (width × depth at fixed workload, isolating the
/// accuracy knob), a population sweep, and an attacker-rate sweep.
pub fn sketch_grid(smoke: bool) -> Vec<(usize, usize, u32, usize, u8, u8, u16)> {
    // The 100k cell runs the paper's §2.3 attacker capability (20,000
    // queries/minute): at overlay scale the count-min window holds every
    // forwarded hop, so per-edge collision excess is of the order of a good
    // edge's forwarding load — the attacker signal must sit well above it,
    // which is exactly the regime the paper's threat model describes. A
    // wide, shallow geometry (2^16 × 2) keeps that excess small at 9× less
    // memory than the exact arena.
    let smoke_cells = vec![(800, 8, 1_500, 8, 12, 4, 64), (100_000, 100, 20_000, 4, 16, 4, 512)];
    if smoke {
        return smoke_cells;
    }
    let mut grid = Vec::new();
    // Geometry sweep: accuracy as a function of width × depth.
    for w in [10u8, 12, 16] {
        for d in [2u8, 4] {
            grid.push((2_000, 20, 1_500, 8, w, d, 64));
        }
    }
    // Population sweep at the default geometry.
    grid.push((500, 5, 1_500, 8, 12, 4, 64));
    grid.push((10_000, 100, 20_000, 4, 13, 4, 128));
    // Attacker-rate sweep: detection parity across the threshold range.
    for rate in [800u32, 3_000, 20_000] {
        grid.push((2_000, 20, rate, 8, 12, 4, 64));
    }
    grid.extend(smoke_cells);
    grid
}

/// Render the sweep results as the committed `BENCH_sketch.json` document.
pub fn sketch_json(cells: &[SketchCell], seed: u64) -> String {
    JsonObj::new()
        .str("schema", SKETCH_SCHEMA)
        .str("generated_by", "ddp-experiments sketch")
        .u64("seed", seed)
        .raw("cells", &json_array(cells.iter().map(|c| c.to_json())))
        .finish()
}

/// Structural validation of a `BENCH_sketch.json` document: schema tag,
/// balanced nesting, and every cell carrying every schema key. Cut accuracy
/// is deliberately NOT validated here: the geometry sweep includes
/// under-provisioned widths precisely to chart where detection degrades;
/// the zero-missed-cuts acceptance applies to the ≥100k cells and is
/// enforced by the runner before the document is written.
pub fn validate_sketch_json(doc: &str) -> Result<(), String> {
    let doc = doc.trim();
    if !doc.starts_with(&format!("{{\"schema\":\"{SKETCH_SCHEMA}\"")) {
        return Err(format!("document does not start with the {SKETCH_SCHEMA} schema tag"));
    }
    if doc.matches('{').count() != doc.matches('}').count()
        || doc.matches('[').count() != doc.matches(']').count()
    {
        return Err("unbalanced braces/brackets".into());
    }
    let Some(cells_at) = doc.find("\"cells\":[") else {
        return Err("missing cells array".into());
    };
    let cells = &doc[cells_at + "\"cells\":[".len()..];
    let n_cells = cells.matches("{\"peers\":").count();
    if n_cells == 0 {
        return Err("cells array contains no cell objects".into());
    }
    for key in SKETCH_CELL_KEYS {
        let quoted = format!("\"{key}\":");
        let found = cells.matches(quoted.as_str()).count();
        if found != n_cells {
            return Err(format!("key {key} present in {found}/{n_cells} cells"));
        }
    }
    Ok(())
}

/// Run the sweep, write `BENCH_sketch.json` into the current directory, and
/// return the human-readable table. Exits non-zero when the emitted document
/// fails its own schema or when the smoke acceptance (≥4× memory saving at
/// the largest cell with zero missed cuts) does not hold.
pub fn sketch(opts: &ExpOptions) -> Table {
    let smoke = opts.smoke;
    let grid = sketch_grid(smoke);
    let mut cells = Vec::with_capacity(grid.len());
    let mut table = Table::new(
        if smoke { "sketch_smoke" } else { "sketch" },
        "Sketch sweep: monitor memory vs cut accuracy (exact-paired runs)",
        &[
            "peers",
            "agents",
            "rate_qpm",
            "w",
            "d",
            "k",
            "mem_ratio",
            "cut_exact",
            "cut_sketch",
            "missed",
            "extra_good",
            "max_excess",
        ],
    );
    for (peers, agents, rate, ticks, w, d, k) in grid {
        eprintln!(
            "[sketch] measuring peers={peers} agents={agents} rate={rate} w=2^{w} d={d} k={k}"
        );
        let cell = measure_sketch_cell(peers, agents, rate, ticks, w, d, k, opts.seed);
        table.push_row(vec![
            cell.peers.to_string(),
            cell.agents.to_string(),
            cell.attacker_rate_qpm.to_string(),
            format!("2^{}", cell.width_log2),
            cell.depth.to_string(),
            cell.topk.to_string(),
            f(cell.memory_ratio, 1),
            cell.attackers_cut_exact.to_string(),
            cell.attackers_cut_sketch.to_string(),
            cell.missed_cuts.to_string(),
            cell.extra_good_cuts.to_string(),
            cell.max_excess.to_string(),
        ]);
        cells.push(cell);
    }
    // The acceptance gate the smoke run is pinned on: at the largest overlay,
    // the sketch must be at least 4× smaller than exact and miss no cuts.
    if let Some(big) = cells.iter().rfind(|c| c.peers >= 100_000) {
        if big.memory_ratio < 4.0 || big.missed_cuts != 0 {
            eprintln!(
                "[sketch] FATAL: acceptance failed at peers={}: memory_ratio={:.1} (need ≥4), \
                 missed_cuts={} (need 0); cut_exact={} cut_sketch={} extra_good={} \
                 max_excess={} items_max={}",
                big.peers,
                big.memory_ratio,
                big.missed_cuts,
                big.attackers_cut_exact,
                big.attackers_cut_sketch,
                big.extra_good_cuts,
                big.max_excess,
                big.items_max
            );
            std::process::exit(2);
        }
    }
    let doc = sketch_json(&cells, opts.seed);
    if let Err(e) = validate_sketch_json(&doc) {
        // A document that fails its own schema must never be committed; the
        // CI smoke run relies on this exit to catch emission drift.
        eprintln!("[sketch] FATAL: emitted JSON failed validation: {e}");
        std::process::exit(2);
    }
    let path = "BENCH_sketch.json";
    match std::fs::write(path, format!("{doc}\n")) {
        Ok(()) => println!("[sketch] wrote {path}"),
        Err(e) => eprintln!("[sketch] failed to write {path}: {e}"),
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_cell(peers: usize) -> SketchCell {
        SketchCell {
            peers,
            agents: peers / 100,
            attacker_rate_qpm: 1_500,
            ticks: 8,
            ttl: 4,
            width_log2: 12,
            depth: 4,
            topk: 64,
            monitor_backend: "sketch(w=2^12,d=4,k=64)".into(),
            exact_state_bytes: 1 << 20,
            sketch_state_bytes: 1 << 16,
            memory_ratio: 16.0,
            elapsed_secs: 0.5,
            ticks_per_sec: 16.0,
            attackers_cut_exact: 7,
            attackers_cut_sketch: 7,
            missed_cuts: 0,
            extra_good_cuts: 1,
            items_max: 100_000,
            max_excess: 3,
            epsilon_n: 66.4,
        }
    }

    #[test]
    fn emitted_json_validates() {
        let doc = sketch_json(&[fake_cell(800), fake_cell(2_000)], 42);
        validate_sketch_json(&doc).unwrap();
    }

    #[test]
    fn validation_rejects_drift() {
        let doc = sketch_json(&[fake_cell(800)], 42);
        assert!(validate_sketch_json(&doc.replace("memory_ratio", "ratio")).is_err());
        assert!(validate_sketch_json(&doc.replace("ddp-bench-sketch/v1", "v0")).is_err());
        assert!(validate_sketch_json("{\"schema\":\"ddp-bench-sketch/v1\",\"cells\":[]}").is_err());
        validate_sketch_json(&doc).unwrap();
    }

    #[test]
    #[ignore = "manual diagnostics for the 100k acceptance cell"]
    fn debug_100k_missed_cuts() {
        use ddp_police::MonitorBackend;
        let exact = super::run_once(100_000, 100, 20_000, 4, MonitorBackend::Exact, 42);
        let params = ddp_police::SketchParams {
            width_log2: 16,
            depth: 4,
            topk: 512,
            salt: ddp_police::SketchParams::default().salt ^ 42,
        };
        let sk = super::run_once(100_000, 100, 20_000, 4, MonitorBackend::Sketch(params), 42);
        let e = super::cut_sets(&exact.result);
        let s = super::cut_sets(&sk.result);
        for &a in e.attackers.difference(&s.attackers) {
            let sv: Vec<String> = sk
                .result
                .verdict_log
                .iter()
                .filter(|v| v.suspect == a)
                .map(|v| format!("t{} obs{} {:?}->{:?}", v.tick, v.observer, v.from, v.to))
                .collect();
            let ev: Vec<String> = exact
                .result
                .verdict_log
                .iter()
                .filter(|v| v.suspect == a)
                .map(|v| format!("t{} obs{} {:?}->{:?}", v.tick, v.observer, v.from, v.to))
                .collect();
            eprintln!("missed attacker {a}:\n  sketch: {sv:?}\n  exact:  {ev:?}");
        }
        eprintln!("exact cut {} sketch cut {}", e.attackers.len(), s.attackers.len());
    }

    #[test]
    fn smoke_cell_pairs_end_to_end() {
        let cell = measure_sketch_cell(400, 4, 1_500, 6, 12, 4, 64, 42);
        assert_eq!(cell.peers, 400);
        assert!(cell.exact_state_bytes > 0, "overlay must have edges");
        assert!(cell.sketch_state_bytes > 0, "sketch run must report its state");
        assert!(cell.items_max > 0, "sketch must have ingested traffic");
        assert_eq!(cell.missed_cuts, 0, "overestimate-only sketch never misses a cut");
    }

    #[test]
    fn paired_runs_share_ground_truth() {
        // Same seed through both backends: the attacker population (and so
        // the maximum cuttable set) is identical, which is what makes the
        // missed/extra comparison meaningful.
        let a = measure_sketch_cell(400, 4, 1_500, 4, 12, 4, 64, 7);
        let b = measure_sketch_cell(400, 4, 1_500, 4, 12, 4, 64, 7);
        assert_eq!(a.attackers_cut_exact, b.attackers_cut_exact, "runs are deterministic");
        assert_eq!(a.attackers_cut_sketch, b.attackers_cut_sketch);
        assert_eq!(a.sketch_state_bytes, b.sketch_state_bytes);
    }
}
