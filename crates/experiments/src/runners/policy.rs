//! Protocol-policy studies: §3.7.1 neighbor-list exchange frequency and the
//! §3.4 report-cheating strategies.

use crate::output::{f, pct, Table};
use crate::scenario::{DefenseKind, ExpOptions, Scenario};
use ddp_attack::CheatStrategy;
use ddp_police::{DdPoliceConfig, ExchangePolicy};
use rayon::prelude::*;

/// §3.7.1: periodic exchange every s ∈ {1, 2, 4, 5, 10} minutes vs the
/// event-driven policy, under churn, with `opts.agents` attackers.
pub fn exchange(opts: &ExpOptions) -> Table {
    let policies: Vec<(String, ExchangePolicy)> = [1u32, 2, 4, 5, 10]
        .iter()
        .map(|&m| (format!("periodic s={m}"), ExchangePolicy::Periodic { minutes: m }))
        .chain(std::iter::once(("event-driven".to_string(), ExchangePolicy::EventDriven)))
        .collect();

    // Paired seeds: every policy sees the same churn and attack.
    let rows: Vec<Vec<String>> = policies
        .par_iter()
        .map(|(label, policy)| {
            let mut control = 0.0;
            let mut fneg = 0.0;
            let mut fpos = 0.0;
            let mut damage = 0.0;
            for r in 0..opts.replicates {
                let cfg = DdPoliceConfig { exchange: *policy, ..DdPoliceConfig::default() };
                let dr = Scenario::builder()
                    .peers(opts.peers)
                    .ticks(opts.ticks)
                    .attackers(opts.agents)
                    .defense(DefenseKind::DdPoliceFull(cfg))
                    .seed(opts.seed_for(0, r))
                    .build()
                    .run_with_damage();
                control += dr.attacked.summary.control_per_tick;
                fneg += dr.attacked.summary.errors.false_negative as f64;
                fpos += dr.attacked.summary.errors.false_positive as f64;
                damage += dr.stable_damage();
            }
            let n = opts.replicates.max(1) as f64;
            vec![label.clone(), f(control / n, 0), f(fneg / n, 1), f(fpos / n, 1), pct(damage / n)]
        })
        .collect();

    let mut t = Table::new(
        "exchange_policy",
        format!("Section 3.7.1: neighbor-list exchange policy ({} agents, churn on)", opts.agents),
        &["policy", "control msgs/tick", "false negative", "false positive", "stable damage"],
    );
    for row in rows {
        t.push_row(row);
    }
    t
}

/// §3.4: the attacker's report-cheating options. The paper argues none of
/// them helps; this experiment quantifies each.
pub fn cheating(opts: &ExpOptions) -> Table {
    // Paired seeds across strategies.
    let rows: Vec<Vec<String>> = CheatStrategy::all()
        .par_iter()
        .map(|&strategy| {
            let mut cut = 0.0;
            let mut never = 0.0;
            let mut fneg = 0.0;
            let mut damage = 0.0;
            let mut recoveries = Vec::new();
            for r in 0..opts.replicates {
                let dr = Scenario::builder()
                    .peers(opts.peers)
                    .ticks(opts.ticks)
                    .attackers(opts.agents)
                    .cheat(strategy)
                    .defense(DefenseKind::DdPolice { cut_threshold: 5.0 })
                    .seed(opts.seed_for(0, r))
                    .build()
                    .run_with_damage();
                cut += dr.attacked.summary.attackers_cut as f64;
                never += dr.attacked.summary.attackers_never_cut as f64;
                fneg += dr.attacked.summary.errors.false_negative as f64;
                damage += dr.stable_damage();
                if let Some(t) = dr.recovery_ticks {
                    recoveries.push(t as f64);
                }
            }
            let n = opts.replicates.max(1) as f64;
            vec![
                strategy.label().to_string(),
                f(cut / n, 1),
                f(never / n, 1),
                f(fneg / n, 1),
                pct(damage / n),
                if recoveries.is_empty() {
                    "not recovered".to_string()
                } else {
                    f(recoveries.iter().sum::<f64>() / recoveries.len() as f64, 1)
                },
            ]
        })
        .collect();

    let mut t = Table::new(
        "cheating_strategies",
        format!("Section 3.4: attacker report-cheating strategies ({} agents)", opts.agents),
        &[
            "strategy",
            "attacker cut events",
            "attackers never cut",
            "good peers cut",
            "stable damage",
            "recovery ticks",
        ],
    );
    for row in rows {
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ExpOptions {
        // 12 ticks, not 8: with the default 2-minute exchange period the
        // defense only finishes cutting the agents around tick 10, so the
        // damage figures need a couple of stable ticks after recovery.
        ExpOptions { peers: 240, ticks: 12, seed: 11, agents: 10, ..ExpOptions::default() }
    }

    #[test]
    fn exchange_table_covers_all_policies() {
        let t = exchange(&tiny_opts());
        assert_eq!(t.rows.len(), 6);
        assert!(t.rows[5][0].contains("event-driven"));
    }

    #[test]
    fn cheating_table_covers_all_strategies() {
        let t = cheating(&tiny_opts());
        assert_eq!(t.rows.len(), 4);
        let labels: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(labels.contains(&"honest") && labels.contains(&"silent"));
    }

    #[test]
    fn honest_deflate_and_silence_do_not_rescue_the_attack() {
        // §3.4's per-agent analysis holds for honesty, deflation, and
        // silence: the agents end up cut and stable damage is low.
        let t = cheating(&tiny_opts());
        for row in &t.rows {
            if row[0] == "inflate" {
                continue; // see the collusion test below
            }
            let damage: f64 = row[4].trim_end_matches('%').parse().unwrap();
            assert!(damage < 50.0, "strategy {} left stable damage {damage}%", row[0]);
        }
    }

    /// Reproduction finding beyond the paper: §3.4's Case 1 ("reporting a
    /// larger number ... is not a meaningful cheating") assumes a *lone*
    /// agent. When several agents are deployed, an agent adjacent to a
    /// fellow agent can inflate its claimed traffic *into* that suspect,
    /// inflating `Σ Q_{m→j}` and driving both indicators negative —
    /// collusive vouching that shields the suspect. See EXPERIMENTS.md.
    #[test]
    fn inflation_enables_collusive_vouching() {
        let t = cheating(&tiny_opts());
        let row = t.rows.iter().find(|r| r[0] == "inflate").unwrap();
        let honest = t.rows.iter().find(|r| r[0] == "honest").unwrap();
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        assert!(
            parse(&row[4]) >= parse(&honest[4]),
            "inflation should never help the defense: inflate {} vs honest {}",
            row[4],
            honest[4]
        );
    }
}
