//! Cut-threshold studies: Figures 12 (damage rate over time), 13 (errors vs
//! CT), and 14 (damage recovery time vs CT).

use crate::output::{f, pct, Table};
use crate::scenario::{DefenseKind, ExpOptions, Scenario};
use rayon::prelude::*;

/// Averaged outcome of one cut-threshold setting.
#[derive(Debug, Clone, PartialEq)]
pub struct CtRow {
    pub cut_threshold: f64,
    /// Good peers wrongly disconnected (paper's false negative), mean.
    pub false_negative: f64,
    /// Attackers still connected at run end (paper's false positive), mean.
    pub false_positive: f64,
    /// Sum (paper's false judgment), mean.
    pub false_judgment: f64,
    /// Damage recovery time in ticks, mean over replicates that recovered.
    pub recovery_ticks: Option<f64>,
    /// Stabilized damage rate.
    pub stable_damage: f64,
}

fn ct_scenario(opts: &ExpOptions, ct: f64, seed: u64) -> Scenario {
    Scenario::builder()
        .peers(opts.peers)
        .ticks(opts.ticks)
        .attackers(opts.agents)
        .defense(DefenseKind::DdPolice { cut_threshold: ct })
        .seed(seed)
        .build()
}

/// Sweep the cut threshold with `opts.agents` attackers, averaging
/// `opts.replicates` seeds per point. With `--checkpoint-every` set, each
/// (CT, replicate) pair checkpoints under a deterministic stem so a killed
/// sweep resumes with `--resume` — to bit-identical rows.
pub fn ct_sweep(opts: &ExpOptions, cts: &[f64]) -> Vec<CtRow> {
    // Paired comparison: every CT value sees the same topologies, workloads
    // and churn (seed depends only on the replicate), so the curves isolate
    // the threshold's effect rather than run-to-run variance.
    cts.par_iter()
        .map(|&ct| {
            let mut fneg = 0.0;
            let mut fpos = 0.0;
            let mut damages = 0.0;
            let mut recoveries = Vec::new();
            for r in 0..opts.replicates {
                let scenario = ct_scenario(opts, ct, opts.seed_for(0, r));
                let dr = match opts.checkpoint_stem(&format!("ct{ct}_r{r}")) {
                    Some(stem) => scenario.run_with_damage_checkpointed(
                        &stem,
                        opts.checkpoint_every,
                        opts.resume,
                    ),
                    None => scenario.run_with_damage(),
                };
                fneg += dr.attacked.summary.errors.false_negative as f64;
                fpos += dr.attacked.summary.errors.false_positive as f64;
                damages += dr.stable_damage();
                if let Some(t) = dr.recovery_ticks {
                    recoveries.push(t as f64);
                }
            }
            let n = opts.replicates.max(1) as f64;
            CtRow {
                cut_threshold: ct,
                false_negative: fneg / n,
                false_positive: fpos / n,
                false_judgment: (fneg + fpos) / n,
                recovery_ticks: if recoveries.is_empty() {
                    None
                } else {
                    Some(recoveries.iter().sum::<f64>() / recoveries.len() as f64)
                },
                stable_damage: damages / n,
            }
        })
        .collect()
}

/// The default CT grid of Figures 13/14.
pub const CT_GRID: [f64; 9] = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 9.0, 12.0];

/// Figure 12: damage rate over time for no defense and CT ∈ {3, 7, 10}.
pub fn fig12(opts: &ExpOptions) -> Table {
    let cts = [3.0, 7.0, 10.0];
    let mut runs: Vec<(String, Vec<f64>)> = Vec::new();
    // Undefended reference.
    let run_pair = |scenario: &Scenario, name: &str| match opts.checkpoint_stem(name) {
        Some(stem) => {
            scenario.run_with_damage_checkpointed(&stem, opts.checkpoint_every, opts.resume)
        }
        None => scenario.run_with_damage(),
    };
    let undefended = Scenario::builder()
        .peers(opts.peers)
        .ticks(opts.ticks)
        .attackers(opts.agents)
        .defense(DefenseKind::None)
        .seed(opts.seed)
        .build();
    let undefended = run_pair(&undefended, "fig12_undefended");
    runs.push(("no DD-POLICE".to_string(), undefended.damage.values.clone()));
    let defended: Vec<(String, Vec<f64>)> = cts
        .par_iter()
        .map(|&ct| {
            let dr = run_pair(&ct_scenario(opts, ct, opts.seed), &format!("fig12_ct{ct}"));
            (format!("DD-POLICE-{ct:.0}"), dr.damage.values.clone())
        })
        .collect();
    runs.extend(defended);

    let headers: Vec<&str> =
        std::iter::once("tick").chain(runs.iter().map(|(n, _)| n.as_str())).collect();
    let mut t = Table::new(
        "fig12_damage_over_time",
        format!("Figure 12: damage rate vs time ({} agents, {} peers)", opts.agents, opts.peers),
        &headers,
    );
    for tick in 0..opts.ticks {
        let mut row = vec![(tick + 1).to_string()];
        for (_, vals) in &runs {
            row.push(pct(vals.get(tick).copied().unwrap_or(0.0)));
        }
        t.push_row(row);
    }
    t
}

/// Figure 13: the three error kinds vs cut threshold.
pub fn fig13(rows: &[CtRow]) -> Table {
    let mut t = Table::new(
        "fig13_errors_vs_ct",
        "Figure 13: errors vs cut threshold (false negative = good peers cut; false positive = bad peers missed)",
        &["CT", "false negative", "false positive", "false judgment"],
    );
    for r in rows {
        t.push_row(vec![
            f(r.cut_threshold, 0),
            f(r.false_negative, 1),
            f(r.false_positive, 1),
            f(r.false_judgment, 1),
        ]);
    }
    t
}

/// Figure 14: damage recovery time vs cut threshold.
pub fn fig14(rows: &[CtRow]) -> Table {
    let mut t = Table::new(
        "fig14_recovery_vs_ct",
        "Figure 14: damage recovery time (ticks) vs cut threshold",
        &["CT", "recovery time", "stable damage"],
    );
    for r in rows {
        t.push_row(vec![
            f(r.cut_threshold, 0),
            r.recovery_ticks.map_or("not recovered".into(), |v| f(v, 1)),
            pct(r.stable_damage),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ExpOptions {
        ExpOptions { peers: 240, ticks: 8, seed: 3, agents: 12, ..ExpOptions::default() }
    }

    #[test]
    fn ct_sweep_produces_one_row_per_threshold() {
        let rows = ct_sweep(&tiny_opts(), &[3.0, 7.0]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].cut_threshold, 3.0);
    }

    #[test]
    fn fig12_has_a_row_per_tick_and_defense_helps() {
        let opts = tiny_opts();
        let t = fig12(&opts);
        assert_eq!(t.rows.len(), opts.ticks);
        // Final tick: undefended damage above the best defended damage.
        let last = t.rows.last().unwrap();
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let undefended = parse(&last[1]);
        let best_defended = last[2..].iter().map(|s| parse(s)).fold(f64::INFINITY, f64::min);
        assert!(
            undefended > best_defended,
            "undefended {undefended}% should exceed defended {best_defended}%"
        );
    }

    #[test]
    fn figures_13_and_14_render() {
        let rows = ct_sweep(&tiny_opts(), &[5.0]);
        assert_eq!(fig13(&rows).rows.len(), 1);
        assert_eq!(fig14(&rows).rows.len(), 1);
    }

    #[test]
    fn checkpointed_ct_sweep_matches_plain_sweep() {
        let mut opts = tiny_opts();
        let plain = ct_sweep(&opts, &[5.0]);
        let dir = std::env::temp_dir().join(format!("ddp-ct-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        opts.checkpoint_every = 3;
        opts.checkpoint_dir = Some(dir.clone());
        let checkpointed = ct_sweep(&opts, &[5.0]);
        assert_eq!(plain, checkpointed, "checkpointing must not change the numbers");
        assert!(dir.join("ct5_r0-defended.snap").exists());
        assert!(dir.join("ct5_r0-baseline.snap").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
