//! Collusion sweep (extension beyond the paper): coordinated Byzantine
//! reporting vs. aggregation policy and verdict hysteresis.
//!
//! §3.4 only analyzes a *lone* cheating agent. This runner measures what a
//! coalition does to DD-POLICE's verdicts: `Frame` coalitions (a fraction of
//! an innocent victim's neighbors flood and inflate their
//! `received_from_suspect` claims about it) and `Shield` coalitions
//! (adjacent flooders deflating claims about each other), swept against the
//! aggregation policy (paper's sum / trimmed mean / median) and the W-of-K
//! cut hysteresis. Seeds are paired per (mode, fraction), so every policy ×
//! hysteresis cell judges the identical topology, attack, and coalition —
//! differences between cells are pure defense policy.
//!
//! A second table exercises the quarantine/readmission lifecycle on the
//! framed victim: with readmission probes on, a wrongful cut heals after
//! the backoff instead of lasting forever.

use crate::output::{f, pct, Table};
use crate::scenario::ExpOptions;
use ddp_attack::CollusionPlan;
use ddp_police::{AggregationPolicy, DdPolice, DdPoliceConfig, Hysteresis, ReadmissionPolicy};
use ddp_sim::{RunResult, SimConfig, Simulation};
use ddp_topology::{NodeId, TopologyConfig, TopologyModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Swept colluder fractions (of the victim's neighborhood in frame mode; of
/// `opts.agents` in shield mode). 0 = the no-colluder reference.
pub const FRACTIONS: [f64; 4] = [0.0, 0.15, 0.30, 0.50];

/// Swept aggregation policies.
pub const POLICIES: [(AggregationPolicy, &str); 3] = [
    (AggregationPolicy::Sum, "sum"),
    (AggregationPolicy::TrimmedMean { trim: 0.34 }, "trimmed"),
    (AggregationPolicy::Median, "median"),
];

/// Swept W-of-K hysteresis settings (1-of-1 = the paper).
pub const HYSTERESES: [Hysteresis; 2] =
    [Hysteresis { required: 1, window: 1 }, Hysteresis { required: 2, window: 3 }];

/// How hard framing colluders inflate their claims about the victim. The
/// victim's Buddy Group sum is dominated by `(k-1) x` the coalition's own
/// wire flood into the victim (~10^6..10^7 at full attack rate), so the
/// phantom output needed to convict it is of that order too: nothing in the
/// protocol bounds a `received_from_suspect` claim, which is precisely the
/// sum policy's unbounded sensitivity this sweep measures.
const FRAME_INFLATE: f64 = 5_000.0;
/// How hard shielding colluders deflate their claims about each other.
const SHIELD_DEFLATE: f64 = 0.02;

/// One measured grid cell (replicate means).
#[derive(Debug, Clone)]
pub struct CollusionCell {
    /// "frame" or "shield".
    pub mode: &'static str,
    /// Colluder fraction.
    pub fraction: f64,
    /// Aggregation policy label.
    pub policy: &'static str,
    /// Hysteresis in force.
    pub hysteresis: Hysteresis,
    /// Cut events whose suspect is the framed victim (frame mode; 0 in
    /// shield mode).
    pub victim_cut_events: f64,
    /// Fraction of replicates in which the victim was cut at least once.
    pub victim_ever_cut: f64,
    /// Wrongly disconnected good peers (paper's false negatives).
    pub good_peers_cut: f64,
    /// Colluding agents never disconnected.
    pub attackers_never_cut: f64,
    /// Stabilized success rate.
    pub success_stable: f64,
    /// Ledger `Cut` decisions (≥ applied cuts; the completeness invariant).
    pub ledger_cuts: f64,
}

/// Whether a grid cell runs the framing or the shielding coalition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Frame,
    Shield,
}

fn sim_config(opts: &ExpOptions) -> SimConfig {
    SimConfig {
        topology: TopologyConfig { n: opts.peers, model: TopologyModel::BarabasiAlbert { m: 3 } },
        // Churn off: the framed victim must keep its identity and links for
        // the whole run, so wrongful-cut counts measure the defense, not
        // session luck.
        churn: false,
        ..SimConfig::default()
    }
}

/// Run one configured cell replicate; returns the result and the victim.
fn run_once(
    opts: &ExpOptions,
    mode: Mode,
    fraction: f64,
    police_cfg: DdPoliceConfig,
    seed: u64,
) -> (RunResult, Option<NodeId>) {
    let cfg = sim_config(opts);
    let n = cfg.peers();
    let mut sim = Simulation::new(cfg, DdPolice::new(police_cfg, n), seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc011_0de5);
    let plan = match mode {
        Mode::Frame => CollusionPlan::frame(fraction, FRAME_INFLATE),
        Mode::Shield => {
            let agents = (opts.agents as f64 * fraction).round() as usize;
            CollusionPlan::shield(agents, SHIELD_DEFLATE)
        }
    };
    let outcome = plan.apply(&mut sim, &mut rng);
    (sim.run(opts.ticks), outcome.victim)
}

/// Run the full grid. Exposed separately from [`collusion`] so tests can
/// assert on the numbers rather than on formatted strings.
pub fn collusion_grid(opts: &ExpOptions) -> Vec<CollusionCell> {
    let grid: Vec<(Mode, usize, usize, usize)> = [Mode::Frame, Mode::Shield]
        .iter()
        .flat_map(|&m| {
            (0..FRACTIONS.len()).flat_map(move |fi| {
                (0..POLICIES.len())
                    .flat_map(move |pi| (0..HYSTERESES.len()).map(move |hi| (m, fi, pi, hi)))
            })
        })
        .collect();

    grid.par_iter()
        .map(|&(mode, fi, pi, hi)| {
            let fraction = FRACTIONS[fi];
            let (policy, policy_label) = POLICIES[pi];
            let hysteresis = HYSTERESES[hi];
            let mut cell = CollusionCell {
                mode: match mode {
                    Mode::Frame => "frame",
                    Mode::Shield => "shield",
                },
                fraction,
                policy: policy_label,
                hysteresis,
                victim_cut_events: 0.0,
                victim_ever_cut: 0.0,
                good_peers_cut: 0.0,
                attackers_never_cut: 0.0,
                success_stable: 0.0,
                ledger_cuts: 0.0,
            };
            for r in 0..opts.replicates {
                let police_cfg =
                    DdPoliceConfig { aggregation: policy, hysteresis, ..DdPoliceConfig::default() };
                // Paired per (mode, fraction): every policy × hysteresis
                // cell sees the identical run.
                let seed = opts.seed_for(
                    match mode {
                        Mode::Frame => fi,
                        Mode::Shield => FRACTIONS.len() + fi,
                    },
                    r,
                );
                let (result, victim) = run_once(opts, mode, fraction, police_cfg, seed);
                let victim_cuts = victim
                    .map(|v| result.cut_log.iter().filter(|c| c.suspect == v).count())
                    .unwrap_or(0);
                cell.victim_cut_events += victim_cuts as f64;
                cell.victim_ever_cut += f64::from(victim_cuts > 0);
                cell.good_peers_cut += result.summary.errors.false_negative as f64;
                cell.attackers_never_cut += result.summary.attackers_never_cut as f64;
                cell.success_stable += result.summary.success_rate_stable;
                cell.ledger_cuts += result.summary.verdicts.cuts as f64;
            }
            let n = opts.replicates.max(1) as f64;
            cell.victim_cut_events /= n;
            cell.victim_ever_cut /= n;
            cell.good_peers_cut /= n;
            cell.attackers_never_cut /= n;
            cell.success_stable /= n;
            cell.ledger_cuts /= n;
            cell
        })
        .collect()
}

/// The collusion sweep as a rendered table.
pub fn collusion(opts: &ExpOptions) -> Table {
    let cells = collusion_grid(opts);
    let mut t = Table::new(
        "collusion",
        format!(
            "Coordinated report cheating: mode x colluder fraction x aggregation x hysteresis \
             ({} peers)",
            opts.peers
        ),
        &[
            "mode",
            "fraction",
            "policy",
            "W/K",
            "victim cuts",
            "victim ever-cut",
            "good cut",
            "uncaught",
            "success",
            "ledger cuts",
        ],
    );
    for c in &cells {
        t.push_row(vec![
            c.mode.to_string(),
            pct(c.fraction),
            c.policy.to_string(),
            format!("{}/{}", c.hysteresis.required, c.hysteresis.window),
            f(c.victim_cut_events, 1),
            pct(c.victim_ever_cut),
            f(c.good_peers_cut, 1),
            f(c.attackers_never_cut, 1),
            pct(c.success_stable),
            f(c.ledger_cuts, 1),
        ]);
    }
    t
}

/// One readmission-lifecycle measurement row.
#[derive(Debug, Clone)]
pub struct ReadmissionCell {
    /// Whether quarantine probes were enabled.
    pub enabled: bool,
    /// Wrongful cuts of good peers (severed-edge count).
    pub wrongful_cuts: f64,
    /// Mean ticks a wrongly severed edge stayed down (censored at run end).
    pub wrongful_cut_ticks_mean: f64,
    /// Quarantine → probation probes issued.
    pub probes: f64,
    /// Probations survived into full readmission.
    pub readmissions: f64,
    /// Probationary re-cuts.
    pub recuts: f64,
    /// Mean ticks from quarantine entry to full readmission.
    pub readmission_latency: f64,
    /// Colluding agents never disconnected.
    pub attackers_never_cut: f64,
}

/// Measure the quarantine/readmission lifecycle under the harshest framing
/// cell (30% colluders, sum aggregation — the paper's policy wrongly cuts
/// the victim there): readmission off (the paper's permanent cut) vs. on.
pub fn readmission_grid(opts: &ExpOptions) -> Vec<ReadmissionCell> {
    [false, true]
        .par_iter()
        .map(|&enabled| {
            let mut cell = ReadmissionCell {
                enabled,
                wrongful_cuts: 0.0,
                wrongful_cut_ticks_mean: 0.0,
                probes: 0.0,
                readmissions: 0.0,
                recuts: 0.0,
                readmission_latency: 0.0,
                attackers_never_cut: 0.0,
            };
            for r in 0..opts.replicates {
                let police_cfg = DdPoliceConfig {
                    readmission: ReadmissionPolicy { enabled, ..ReadmissionPolicy::default() },
                    ..DdPoliceConfig::default()
                };
                // Same paired seed stream as the frame cells at 30%.
                let seed = opts.seed_for(2, r);
                let (result, _) = run_once(opts, Mode::Frame, 0.30, police_cfg, seed);
                let v = &result.summary.verdicts;
                cell.wrongful_cuts += v.wrongful_cuts as f64;
                cell.wrongful_cut_ticks_mean += v.wrongful_cut_ticks_mean;
                cell.probes += v.readmission_probes as f64;
                cell.readmissions += v.readmissions as f64;
                cell.recuts += v.recuts as f64;
                cell.readmission_latency += v.readmission_latency_mean_ticks;
                cell.attackers_never_cut += result.summary.attackers_never_cut as f64;
            }
            let n = opts.replicates.max(1) as f64;
            cell.wrongful_cuts /= n;
            cell.wrongful_cut_ticks_mean /= n;
            cell.probes /= n;
            cell.readmissions /= n;
            cell.recuts /= n;
            cell.readmission_latency /= n;
            cell.attackers_never_cut /= n;
            cell
        })
        .collect()
}

/// The readmission lifecycle as a rendered table.
pub fn readmission(opts: &ExpOptions) -> Table {
    let cells = readmission_grid(opts);
    let mut t = Table::new(
        "readmission",
        "Quarantine/readmission under 30% framing colluders (sum aggregation)".to_string(),
        &[
            "readmission",
            "wrongful cuts",
            "mean severed ticks",
            "probes",
            "readmitted",
            "re-cut",
            "readmit latency",
            "uncaught",
        ],
    );
    for c in &cells {
        t.push_row(vec![
            if c.enabled { "on" } else { "off" }.to_string(),
            f(c.wrongful_cuts, 1),
            f(c.wrongful_cut_ticks_mean, 2),
            f(c.probes, 1),
            f(c.readmissions, 1),
            f(c.recuts, 1),
            f(c.readmission_latency, 2),
            f(c.attackers_never_cut, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ExpOptions {
        ExpOptions { peers: 240, ticks: 8, seed: 23, agents: 12, ..ExpOptions::default() }
    }

    #[test]
    fn grid_covers_every_cell() {
        let cells = collusion_grid(&tiny_opts());
        assert_eq!(
            cells.len(),
            2 * FRACTIONS.len() * POLICIES.len() * HYSTERESES.len(),
            "every mode x fraction x policy x hysteresis cell must run"
        );
    }

    #[test]
    fn robust_aggregation_spares_the_framed_victim() {
        // The PR's acceptance criterion: with >= 30% framing colluders,
        // median/trimmed aggregation wrongly cuts the victim strictly less
        // than the paper's sum.
        let cells = collusion_grid(&tiny_opts());
        let pick = |policy: &str, fraction: f64| -> &CollusionCell {
            cells
                .iter()
                .find(|c| {
                    c.mode == "frame"
                        && c.policy == policy
                        && (c.fraction - fraction).abs() < 1e-9
                        && c.hysteresis == Hysteresis { required: 1, window: 1 }
                })
                .expect("cell exists")
        };
        // 0.50 is past the robust centers' breakdown point (> half the
        // Buddy Group lies), so the criterion is asserted at 0.30.
        let fraction = 0.30;
        let sum = pick("sum", fraction);
        assert!(
            sum.victim_cut_events > 0.0,
            "framing must convict the victim under sum at fraction {fraction}"
        );
        for robust in ["median", "trimmed"] {
            let r = pick(robust, fraction);
            assert!(
                r.victim_cut_events < sum.victim_cut_events,
                "{robust} must wrongly cut the victim strictly less than sum at \
                 fraction {fraction}: {} vs {}",
                r.victim_cut_events,
                sum.victim_cut_events
            );
        }
    }

    #[test]
    fn zero_colluders_no_victim_cuts() {
        let cells = collusion_grid(&tiny_opts());
        for c in cells.iter().filter(|c| c.fraction == 0.0) {
            assert_eq!(c.victim_cut_events, 0.0, "no coalition, no framing: {c:?}");
            assert_eq!(c.good_peers_cut, 0.0, "no attack, no wrongful cuts: {c:?}");
        }
    }

    #[test]
    fn ledger_counts_at_least_the_applied_cuts() {
        let cells = collusion_grid(&tiny_opts());
        for c in &cells {
            assert!(
                c.ledger_cuts >= c.victim_cut_events,
                "every applied cut must appear in the ledger: {c:?}"
            );
        }
    }

    #[test]
    fn readmission_heals_wrongful_cuts() {
        let opts = tiny_opts();
        let cells = readmission_grid(&opts);
        let off = cells.iter().find(|c| !c.enabled).unwrap();
        let on = cells.iter().find(|c| c.enabled).unwrap();
        assert_eq!(off.probes, 0.0);
        assert_eq!(off.readmissions, 0.0);
        if on.wrongful_cuts > 0.0 {
            assert!(on.probes > 0.0, "quarantined peers must be probed: {on:?}");
            assert!(
                on.wrongful_cut_ticks_mean < off.wrongful_cut_ticks_mean,
                "probes must shorten wrongful severance: on {} vs off {}",
                on.wrongful_cut_ticks_mean,
                off.wrongful_cut_ticks_mean
            );
        }
    }

    #[test]
    fn tables_render_all_rows() {
        let opts = tiny_opts();
        assert_eq!(
            collusion(&opts).rows.len(),
            2 * FRACTIONS.len() * POLICIES.len() * HYSTERESES.len()
        );
        assert_eq!(readmission(&opts).rows.len(), 2);
    }
}
