//! Control-plane resilience sweep (extension beyond the paper).
//!
//! DD-POLICE is specified over a reliable same-tick transport. This runner
//! measures how the protocol degrades when `Neighbor_Traffic` and
//! neighbor-list messages are lost or delayed: loss ∈ {0, 1, 5, 10, 20}% ×
//! reply/list delay ∈ {0, 1, 2} ticks × exchange period s ∈ {1, 2, 5} min,
//! with paired seeds per period so every fault level sees the same topology,
//! churn, and attack. Δ columns compare each cell against its own
//! fault-free (loss = 0, delay = 0) cell.

use crate::output::{f, pct, Table};
use crate::scenario::{DefenseKind, ExpOptions, Scenario};
use ddp_police::{DdPoliceConfig, ExchangePolicy};
use ddp_sim::{CutRecord, FaultConfig};
use rayon::prelude::*;
use std::collections::HashMap;

/// Swept per-message loss probabilities.
pub const LOSSES: [f64; 5] = [0.0, 0.01, 0.05, 0.10, 0.20];
/// Swept delivery delays (ticks) for delayed messages; 0 = no delay leg.
pub const DELAYS: [u32; 3] = [0, 1, 2];
/// Swept neighbor-list exchange periods (minutes).
pub const PERIODS: [u32; 3] = [1, 2, 5];

/// Probability that a surviving message is delayed, when the delay leg is on.
const DELAY_PROB: f64 = 0.5;

/// One measured grid cell.
#[derive(Debug, Clone)]
pub struct ResilienceCell {
    /// Exchange period s (minutes).
    pub period: u32,
    /// Per-message loss probability.
    pub loss: f64,
    /// Delay of delayed messages (ticks); 0 = delays off.
    pub delay: u32,
    /// Fraction of answerable report lookups resolved by assume-zero.
    pub missed_report_rate: f64,
    /// Mean membership-snapshot age behind judgments (ticks).
    pub snapshot_age: f64,
    /// Mean ticks from attack start to each agent's first cut (agents never
    /// cut censored at `ticks + 1`).
    pub detection_latency: f64,
    /// Wrongly disconnected good peers (paper's false negatives).
    pub good_peers_cut: f64,
    /// Agents that were never disconnected.
    pub attackers_never_cut: f64,
    /// Transport retries the bounded re-request budget spent.
    pub retries: f64,
}

/// Mean first-cut tick over all `agents`, censoring never-cut agents at
/// `ticks + 1` (an agent the run never caught is "at least this slow").
pub fn detection_latency(cut_log: &[CutRecord], agents: usize, ticks: usize) -> f64 {
    if agents == 0 {
        return 0.0;
    }
    let mut first: HashMap<u32, u32> = HashMap::new();
    for c in cut_log.iter().filter(|c| c.suspect_was_attacker) {
        first.entry(c.suspect.0).or_insert(c.tick);
    }
    let censor = (ticks + 1) as f64;
    let caught_sum: f64 = first.values().map(|&t| t as f64).sum();
    let uncaught = agents.saturating_sub(first.len()) as f64;
    (caught_sum + uncaught * censor) / agents as f64
}

/// Run the full grid. Exposed separately from [`resilience`] so tests can
/// assert on the numbers rather than on formatted strings.
pub fn resilience_grid(opts: &ExpOptions) -> Vec<ResilienceCell> {
    let grid: Vec<(u32, f64, u32)> = PERIODS
        .iter()
        .flat_map(|&s| LOSSES.iter().flat_map(move |&l| DELAYS.iter().map(move |&d| (s, l, d))))
        .collect();

    grid.par_iter()
        .map(|&(period, loss, delay)| {
            let mut cell = ResilienceCell {
                period,
                loss,
                delay,
                missed_report_rate: 0.0,
                snapshot_age: 0.0,
                detection_latency: 0.0,
                good_peers_cut: 0.0,
                attackers_never_cut: 0.0,
                retries: 0.0,
            };
            for r in 0..opts.replicates {
                let police = DdPoliceConfig {
                    exchange: ExchangePolicy::Periodic { minutes: period },
                    ..DdPoliceConfig::default()
                };
                let report = Scenario::builder()
                    .peers(opts.peers)
                    .ticks(opts.ticks)
                    .attackers(opts.agents)
                    .defense(DefenseKind::DdPoliceFull(police))
                    .faults(FaultConfig {
                        loss,
                        delay_prob: if delay > 0 { DELAY_PROB } else { 0.0 },
                        delay_ticks: delay.max(1),
                        crash_prob: 0.0,
                    })
                    // Paired per period: every (loss, delay) cell of one
                    // period row sees identical topology/churn/attack.
                    .seed(opts.seed_for(period as usize, r))
                    .build()
                    .run();
                let res = &report.summary.resilience;
                cell.missed_report_rate += res.missed_report_rate();
                cell.snapshot_age += res.mean_snapshot_age();
                cell.detection_latency +=
                    detection_latency(&report.cut_log, opts.agents, opts.ticks);
                cell.good_peers_cut += report.summary.errors.false_negative as f64;
                cell.attackers_never_cut += report.summary.attackers_never_cut as f64;
                cell.retries += res.report_retries as f64;
            }
            let n = opts.replicates.max(1) as f64;
            cell.missed_report_rate /= n;
            cell.snapshot_age /= n;
            cell.detection_latency /= n;
            cell.good_peers_cut /= n;
            cell.attackers_never_cut /= n;
            cell.retries /= n;
            cell
        })
        .collect()
}

/// The resilience sweep as a rendered table, with Δ columns against each
/// period's fault-free cell.
pub fn resilience(opts: &ExpOptions) -> Table {
    let cells = resilience_grid(opts);
    // Fault-free reference per period.
    let baseline = |period: u32| -> &ResilienceCell {
        cells
            .iter()
            .find(|c| c.period == period && c.loss == 0.0 && c.delay == 0)
            .expect("grid always contains the fault-free cell")
    };

    let mut t = Table::new(
        "resilience",
        format!(
            "Control-plane resilience: loss x delay x exchange period ({} agents)",
            opts.agents
        ),
        &[
            "s",
            "loss",
            "delay",
            "missed reports",
            "snap age",
            "detect latency",
            "d latency",
            "good cut",
            "d good cut",
            "uncaught",
            "retries",
        ],
    );
    for c in &cells {
        let b = baseline(c.period);
        t.push_row(vec![
            c.period.to_string(),
            pct(c.loss),
            c.delay.to_string(),
            pct(c.missed_report_rate),
            f(c.snapshot_age, 2),
            f(c.detection_latency, 2),
            f(c.detection_latency - b.detection_latency, 2),
            f(c.good_peers_cut, 1),
            f(c.good_peers_cut - b.good_peers_cut, 1),
            f(c.attackers_never_cut, 1),
            f(c.retries, 0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ExpOptions {
        ExpOptions { peers: 160, ticks: 8, seed: 17, agents: 6, ..ExpOptions::default() }
    }

    #[test]
    fn grid_covers_every_cell_and_heavy_loss_completes() {
        let cells = resilience_grid(&tiny_opts());
        assert_eq!(cells.len(), PERIODS.len() * LOSSES.len() * DELAYS.len());
        // The harshest cell (20% loss, 2-tick delays, s = 5) ran to the end.
        assert!(cells.iter().any(|c| c.period == 5 && c.loss == 0.20 && c.delay == 2));
    }

    #[test]
    fn fault_free_cells_report_no_transport_damage() {
        let cells = resilience_grid(&tiny_opts());
        for c in cells.iter().filter(|c| c.loss == 0.0 && c.delay == 0) {
            assert_eq!(c.missed_report_rate, 0.0, "s={}", c.period);
            assert_eq!(c.retries, 0.0, "s={}", c.period);
        }
    }

    #[test]
    fn missed_reports_grow_with_loss_rate() {
        // Paired seeds + nested threshold hashing: with the delay leg off,
        // raising the loss rate can only turn deliveries into losses, so the
        // missed-report rate must not decrease along a pure-loss row. (With
        // delays on, the stale-reply fallback couples the two fault legs and
        // strict per-cell monotonicity is not guaranteed.)
        let cells = resilience_grid(&tiny_opts());
        for &s in &PERIODS {
            let mut row: Vec<&ResilienceCell> =
                cells.iter().filter(|c| c.period == s && c.delay == 0).collect();
            row.sort_by(|a, b| a.loss.total_cmp(&b.loss));
            for w in row.windows(2) {
                assert!(
                    w[1].missed_report_rate >= w[0].missed_report_rate - 1e-9,
                    "s={s}: loss {} -> {} dropped the missed rate {} -> {}",
                    w[0].loss,
                    w[1].loss,
                    w[0].missed_report_rate,
                    w[1].missed_report_rate
                );
            }
        }
        // Any faulted cell shows transport damage; run-trajectory divergence
        // makes finer cross-cell comparisons on the delay leg unreliable.
        for c in cells.iter().filter(|c| c.loss > 0.0 || c.delay > 0) {
            assert!(
                c.missed_report_rate > 0.0,
                "s={} loss={} delay={}: faulted transport must miss some reports",
                c.period,
                c.loss,
                c.delay
            );
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let t = resilience(&tiny_opts());
        assert_eq!(t.rows.len(), PERIODS.len() * LOSSES.len() * DELAYS.len());
    }

    #[test]
    fn detection_latency_censors_uncaught_agents() {
        use ddp_topology::NodeId;
        let log = vec![
            CutRecord {
                tick: 3,
                observer: NodeId(1),
                suspect: NodeId(9),
                suspect_was_attacker: true,
            },
            CutRecord {
                tick: 5,
                observer: NodeId(2),
                suspect: NodeId(9),
                suspect_was_attacker: true,
            },
            CutRecord {
                tick: 4,
                observer: NodeId(2),
                suspect: NodeId(3),
                suspect_was_attacker: false,
            },
        ];
        // Agent 9 caught at tick 3 (first cut), the second agent never: 11.
        assert_eq!(detection_latency(&log, 2, 10), (3.0 + 11.0) / 2.0);
        assert_eq!(detection_latency(&[], 0, 10), 0.0);
    }
}
