//! `scale` — throughput sweep over overlay size × attacker fraction.
//!
//! Reports ticks/sec, queries-processed/sec, and a peak-RSS proxy (heap
//! high-water mark from the binary's counting allocator) for the DD-POLICE
//! engine at paper defaults, and emits the machine-readable
//! `BENCH_scale.json` that tracks the perf trajectory PR-over-PR.
//!
//! Construction (topology generation, catalog sampling) is excluded from the
//! timed region: the number the sweep pins is steady-state ticks/sec of the
//! step loop, which is what every other experiment pays per data point.

use crate::output::{f, Table};
use crate::scenario::ExpOptions;
use ddp_attack::AttackPlan;
use ddp_metrics::{json_array, CountingAlloc, JsonObj};
use ddp_police::{DdPolice, DdPoliceConfig};
use ddp_sim::{SimConfig, Simulation};
use ddp_topology::{TopologyConfig, TopologyModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One measured grid cell.
#[derive(Debug, Clone)]
pub struct ScaleCell {
    /// Overlay size.
    pub peers: usize,
    /// Attacker fraction of the population.
    pub attacker_fraction: f64,
    /// Resulting agent count.
    pub agents: usize,
    /// Ticks in the timed step loop.
    pub ticks: usize,
    /// Worker-pool width the engine ran with (1 = serial).
    pub threads: usize,
    /// Wall-clock of the step loop, seconds.
    pub elapsed_secs: f64,
    /// Step-loop throughput.
    pub ticks_per_sec: f64,
    /// Query transmissions processed per wall-clock second.
    pub queries_per_sec: f64,
    /// Total query-hop transmissions over the timed region.
    pub query_hops_total: u64,
    /// Heap high-water mark over construction + step loop (0 when the binary
    /// has no counting allocator installed).
    pub peak_alloc_bytes: u64,
    /// Allocation calls during the step loop (0 without an allocator).
    pub step_allocations: u64,
    /// Run sanity: mean success rate (detects a silently-broken engine).
    pub success_rate_mean: f64,
    /// Run sanity: attacker disconnections performed.
    pub attackers_cut: u64,
}

impl ScaleCell {
    fn to_json(&self) -> String {
        JsonObj::new()
            .u64("peers", self.peers as u64)
            .f64("attacker_fraction", self.attacker_fraction)
            .u64("agents", self.agents as u64)
            .u64("ticks", self.ticks as u64)
            .u64("threads", self.threads as u64)
            .f64("elapsed_secs", self.elapsed_secs)
            .f64("ticks_per_sec", self.ticks_per_sec)
            .f64("queries_per_sec", self.queries_per_sec)
            .u64("query_hops_total", self.query_hops_total)
            .u64("peak_alloc_bytes", self.peak_alloc_bytes)
            .u64("step_allocations", self.step_allocations)
            .f64("success_rate_mean", self.success_rate_mean)
            .u64("attackers_cut", self.attackers_cut)
            .finish()
    }
}

/// Every key a cell object must carry, in emission order (the schema).
pub const SCALE_CELL_KEYS: [&str; 13] = [
    "peers",
    "attacker_fraction",
    "agents",
    "ticks",
    "threads",
    "elapsed_secs",
    "ticks_per_sec",
    "queries_per_sec",
    "query_hops_total",
    "peak_alloc_bytes",
    "step_allocations",
    "success_rate_mean",
    "attackers_cut",
];

/// Schema identifier embedded in the emitted JSON.
pub const SCALE_SCHEMA: &str = "ddp-bench-scale/v2";

/// Measure one cell: build a DD-POLICE-defended simulation, time the step
/// loop, and collect throughput + allocation numbers.
pub fn measure_cell(
    peers: usize,
    attacker_fraction: f64,
    ticks: usize,
    threads: usize,
    seed: u64,
    alloc: Option<&'static CountingAlloc>,
) -> ScaleCell {
    let agents = ((peers as f64 * attacker_fraction).round() as usize).min(peers / 2);
    if let Some(a) = alloc {
        a.reset();
    }
    let cfg = SimConfig {
        topology: TopologyConfig { n: peers, model: TopologyModel::BarabasiAlbert { m: 3 } },
        ..SimConfig::default()
    };
    let police = DdPolice::new(DdPoliceConfig::default(), peers);
    let mut sim = Simulation::new(cfg, police, seed);
    sim.set_threads(threads);
    if agents > 0 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdd05_ee1f);
        AttackPlan::new(agents).apply(&mut sim, &mut rng);
    }
    let allocs_before = alloc.map(|a| a.allocations() as u64).unwrap_or(0);
    let start = Instant::now();
    for _ in 0..ticks {
        sim.step();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let step_allocations = alloc.map(|a| a.allocations() as u64 - allocs_before).unwrap_or(0);
    let peak_alloc_bytes = alloc.map(|a| a.peak_bytes() as u64).unwrap_or(0);
    let result = sim.finish();
    let query_hops_total: u64 = result.series.traffic.values.iter().map(|&v| v as u64).sum();
    let safe_elapsed = elapsed.max(1e-9);
    ScaleCell {
        peers,
        attacker_fraction,
        agents,
        ticks,
        threads,
        elapsed_secs: elapsed,
        ticks_per_sec: ticks as f64 / safe_elapsed,
        queries_per_sec: query_hops_total as f64 / safe_elapsed,
        query_hops_total,
        peak_alloc_bytes,
        step_allocations,
        success_rate_mean: result.summary.success_rate_mean,
        attackers_cut: result.summary.attackers_cut,
    }
}

/// The sweep grid: `(peers, attacker_fraction, ticks, threads)`. Tick counts
/// shrink with overlay size so the full sweep stays minutes, not hours;
/// throughput is per-tick steady state, so few ticks suffice at large n.
/// The 100k and 1M cells sweep worker widths 1/2/4/8 — the thread-scaling
/// trajectory the parallel tick engine is pinned on. The smoke grid runs a
/// single small cell at `threads` (the CLI `--threads` value), so CI can
/// exercise the parallel path end to end cheaply.
pub fn scale_grid(smoke: bool, threads: usize) -> Vec<(usize, f64, usize, usize)> {
    if smoke {
        return vec![(300, 0.05, 2, threads)];
    }
    let mut grid = vec![(2_000, 0.05, 10, 1), (8_000, 0.05, 5, 1), (10_000, 0.05, 4, 1)];
    for w in [1usize, 2, 4, 8] {
        grid.push((100_000, 0.05, 2, w));
    }
    for w in [1usize, 2, 4, 8] {
        grid.push((1_000_000, 0.05, 1, w));
    }
    grid
}

/// Render the sweep results as the committed `BENCH_scale.json` document.
pub fn scale_json(cells: &[ScaleCell], seed: u64) -> String {
    JsonObj::new()
        .str("schema", SCALE_SCHEMA)
        .str("generated_by", "ddp-experiments scale")
        .u64("seed", seed)
        .raw("cells", &json_array(cells.iter().map(|c| c.to_json())))
        .finish()
}

/// Structural validation of a `BENCH_scale.json` document: schema tag,
/// balanced nesting, and every cell carrying every schema key. (The
/// workspace has no JSON parser; this is the CI smoke check.)
pub fn validate_scale_json(doc: &str) -> Result<(), String> {
    let doc = doc.trim();
    if !doc.starts_with(&format!("{{\"schema\":\"{SCALE_SCHEMA}\"")) {
        return Err(format!("document does not start with the {SCALE_SCHEMA} schema tag"));
    }
    if doc.matches('{').count() != doc.matches('}').count()
        || doc.matches('[').count() != doc.matches(']').count()
    {
        return Err("unbalanced braces/brackets".into());
    }
    let Some(cells_at) = doc.find("\"cells\":[") else {
        return Err("missing cells array".into());
    };
    let cells = &doc[cells_at + "\"cells\":[".len()..];
    let n_cells = cells.matches("{\"peers\":").count();
    if n_cells == 0 {
        return Err("cells array contains no cell objects".into());
    }
    for key in SCALE_CELL_KEYS {
        let quoted = format!("\"{key}\":");
        let found = cells.matches(quoted.as_str()).count();
        if found != n_cells {
            return Err(format!("key {key} present in {found}/{n_cells} cells"));
        }
    }
    Ok(())
}

/// Run the sweep, write `BENCH_scale.json` into the current directory, and
/// return the human-readable table.
pub fn scale(opts: &ExpOptions, alloc: Option<&'static CountingAlloc>) -> Table {
    let smoke = opts.smoke;
    let grid = scale_grid(smoke, opts.threads);
    let mut cells = Vec::with_capacity(grid.len());
    let mut table = Table::new(
        if smoke { "scale_smoke" } else { "scale" },
        "Scale sweep: step-loop throughput (DD-POLICE defaults)",
        &[
            "peers",
            "attack%",
            "agents",
            "ticks",
            "threads",
            "ticks/sec",
            "queries/sec",
            "peak_heap_MiB",
        ],
    );
    for (peers, frac, ticks, threads) in grid {
        eprintln!(
            "[scale] measuring peers={peers} attackers={:.0}% ticks={ticks} threads={threads}",
            frac * 100.0
        );
        let cell = measure_cell(peers, frac, ticks, threads, opts.seed, alloc);
        table.push_row(vec![
            cell.peers.to_string(),
            format!("{:.0}%", cell.attacker_fraction * 100.0),
            cell.agents.to_string(),
            cell.ticks.to_string(),
            cell.threads.to_string(),
            f(cell.ticks_per_sec, 3),
            f(cell.queries_per_sec, 0),
            f(cell.peak_alloc_bytes as f64 / (1024.0 * 1024.0), 1),
        ]);
        cells.push(cell);
    }
    let doc = scale_json(&cells, opts.seed);
    if let Err(e) = validate_scale_json(&doc) {
        // A document that fails its own schema must never be committed; the
        // CI smoke run relies on this exit to catch emission drift.
        eprintln!("[scale] FATAL: emitted JSON failed validation: {e}");
        std::process::exit(2);
    }
    let path = "BENCH_scale.json";
    match std::fs::write(path, format!("{doc}\n")) {
        Ok(()) => println!("[scale] wrote {path}"),
        Err(e) => eprintln!("[scale] failed to write {path}: {e}"),
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_cell(peers: usize) -> ScaleCell {
        ScaleCell {
            peers,
            attacker_fraction: 0.05,
            agents: peers / 20,
            ticks: 4,
            threads: 1,
            elapsed_secs: 0.5,
            ticks_per_sec: 8.0,
            queries_per_sec: 1000.0,
            query_hops_total: 500,
            peak_alloc_bytes: 1 << 20,
            step_allocations: 42,
            success_rate_mean: 0.9,
            attackers_cut: 3,
        }
    }

    #[test]
    fn emitted_json_validates() {
        let doc = scale_json(&[fake_cell(2000), fake_cell(8000)], 42);
        validate_scale_json(&doc).unwrap();
    }

    #[test]
    fn validation_rejects_drift() {
        let doc = scale_json(&[fake_cell(2000)], 42);
        assert!(validate_scale_json(&doc.replace("ticks_per_sec", "tps")).is_err());
        assert!(validate_scale_json(&doc.replace("ddp-bench-scale/v2", "v1")).is_err());
        assert!(validate_scale_json("{\"schema\":\"ddp-bench-scale/v1\",\"cells\":[]}").is_err());
        validate_scale_json(&doc).unwrap();
    }

    #[test]
    fn smoke_cell_measures_end_to_end() {
        let cell = measure_cell(300, 0.05, 2, 1, 42, None);
        assert_eq!(cell.peers, 300);
        assert_eq!(cell.agents, 15);
        assert_eq!(cell.ticks, 2);
        assert_eq!(cell.threads, 1);
        assert!(cell.ticks_per_sec > 0.0);
        assert!(cell.query_hops_total > 0, "floods must move traffic");
        assert!(cell.success_rate_mean > 0.0);
    }

    #[test]
    fn parallel_smoke_cell_matches_serial_results() {
        // The bench path itself must honor byte-identity: same seed, same
        // cell, different widths — identical simulation outcomes.
        let serial = measure_cell(300, 0.05, 2, 1, 42, None);
        let parallel = measure_cell(300, 0.05, 2, 4, 42, None);
        assert_eq!(parallel.threads, 4);
        assert_eq!(serial.query_hops_total, parallel.query_hops_total);
        assert_eq!(serial.success_rate_mean.to_bits(), parallel.success_rate_mean.to_bits());
        assert_eq!(serial.attackers_cut, parallel.attackers_cut);
    }
}
