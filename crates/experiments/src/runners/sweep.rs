//! The §3.6 attack-impact sweeps: Figures 9 (traffic cost), 10 (response
//! time), 11 (success rate) — three views of one sweep over the number of
//! DDoS agents, in three regimes: no attack, attack without defense, attack
//! with DD-POLICE.

use crate::output::{f, pct, Table};
use crate::scenario::{DefenseKind, ExpOptions, Scenario};
use rayon::prelude::*;

/// One sweep configuration's averaged results.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Number of DDoS agents.
    pub agents: usize,
    /// No-attack baseline (flat reference curve).
    pub baseline: RegimeStats,
    /// Attack, no defense.
    pub undefended: RegimeStats,
    /// Attack, DD-POLICE (CT = 5).
    pub defended: RegimeStats,
}

/// The per-regime quantities the three figures plot.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegimeStats {
    /// Mean message transmissions per tick.
    pub traffic_per_tick: f64,
    /// Mean response time of successful queries, seconds.
    pub response_secs: f64,
    /// 95th-percentile response time, seconds (streaming P² estimate).
    pub response_p95_secs: f64,
    /// Stabilized success rate (last quarter of the run).
    pub success: f64,
}

fn stats_of(report: &crate::scenario::ScenarioReport) -> RegimeStats {
    RegimeStats {
        traffic_per_tick: report.summary.traffic_per_tick,
        response_secs: report.summary.response_time_mean_secs,
        response_p95_secs: report.summary.response_p95_secs,
        success: report.summary.success_rate_stable,
    }
}

fn mean(stats: &[RegimeStats]) -> RegimeStats {
    let n = stats.len().max(1) as f64;
    RegimeStats {
        traffic_per_tick: stats.iter().map(|s| s.traffic_per_tick).sum::<f64>() / n,
        response_secs: stats.iter().map(|s| s.response_secs).sum::<f64>() / n,
        response_p95_secs: stats.iter().map(|s| s.response_p95_secs).sum::<f64>() / n,
        success: stats.iter().map(|s| s.success).sum::<f64>() / n,
    }
}

/// Agent counts swept (§3.6: "k random peers, where k is ranging from 1 to
/// 200"), capped at 5% of the overlay so reduced-scale runs stay within the
/// paper's attack-density regime (200 agents on 20,000 peers = 1%).
pub fn agent_counts(peers: usize) -> Vec<usize> {
    [1usize, 5, 10, 20, 50, 100, 200].iter().copied().filter(|&k| k * 20 <= peers).collect()
}

/// Run the three-regime sweep. Runs execute in parallel (rayon) with
/// deterministic per-run seeds.
pub fn agent_sweep(opts: &ExpOptions) -> Vec<SweepRow> {
    let ks = agent_counts(opts.peers);

    let scenario = |agents: usize, defense: DefenseKind, seed: u64| {
        Scenario::builder()
            .peers(opts.peers)
            .ticks(opts.ticks)
            .attackers(agents)
            .defense(defense)
            .seed(seed)
            .build()
    };

    // Replicated baseline (agents = 0), shared across rows.
    let baseline_stats: Vec<RegimeStats> = (0..opts.replicates)
        .into_par_iter()
        .map(|r| stats_of(&scenario(0, DefenseKind::None, opts.seed_for(0, r)).run()))
        .collect();
    let baseline = mean(&baseline_stats);

    ks.par_iter()
        .enumerate()
        .map(|(ci, &k)| {
            let per_regime = |defense: DefenseKind| {
                let stats: Vec<RegimeStats> = (0..opts.replicates)
                    .map(|r| {
                        stats_of(&scenario(k, defense.clone(), opts.seed_for(ci + 1, r)).run())
                    })
                    .collect();
                mean(&stats)
            };
            SweepRow {
                agents: k,
                baseline,
                undefended: per_regime(DefenseKind::None),
                defended: per_regime(DefenseKind::DdPolice { cut_threshold: 5.0 }),
            }
        })
        .collect()
}

/// Figure 9: average traffic cost vs number of agents.
pub fn fig9(rows: &[SweepRow]) -> Table {
    let mut t = Table::new(
        "fig9_traffic_cost",
        "Figure 9: average traffic cost (msgs/tick, x1000) vs number of DDoS agents",
        &["agents", "no attack", "attack, no defense", "attack, DD-POLICE", "amplification"],
    );
    for r in rows {
        t.push_row(vec![
            r.agents.to_string(),
            f(r.baseline.traffic_per_tick / 1e3, 1),
            f(r.undefended.traffic_per_tick / 1e3, 1),
            f(r.defended.traffic_per_tick / 1e3, 1),
            format!("{:.1}x", r.undefended.traffic_per_tick / r.baseline.traffic_per_tick.max(1.0)),
        ]);
    }
    t
}

/// Figure 10: average query response time vs number of agents.
pub fn fig10(rows: &[SweepRow]) -> Table {
    let mut t = Table::new(
        "fig10_response_time",
        "Figure 10: average query response time (s) vs number of DDoS agents",
        &[
            "agents",
            "no attack",
            "attack, no defense",
            "attack, DD-POLICE",
            "slowdown",
            "undef. p95",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.agents.to_string(),
            f(r.baseline.response_secs, 2),
            f(r.undefended.response_secs, 2),
            f(r.defended.response_secs, 2),
            format!("{:.1}x", r.undefended.response_secs / r.baseline.response_secs.max(1e-9)),
            f(r.undefended.response_p95_secs, 2),
        ]);
    }
    t
}

/// Figure 11: average query success rate vs number of agents.
pub fn fig11(rows: &[SweepRow]) -> Table {
    let mut t = Table::new(
        "fig11_success_rate",
        "Figure 11: average success rate vs number of DDoS agents",
        &["agents", "no attack", "attack, no defense", "attack, DD-POLICE"],
    );
    for r in rows {
        t.push_row(vec![
            r.agents.to_string(),
            pct(r.baseline.success),
            pct(r.undefended.success),
            pct(r.defended.success),
        ]);
    }
    t
}

/// All three §3.6 figures from a single sweep.
pub fn consequences(opts: &ExpOptions) -> Vec<Table> {
    let rows = agent_sweep(opts);
    vec![fig9(&rows), fig10(&rows), fig11(&rows)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ExpOptions {
        ExpOptions { peers: 240, ticks: 6, seed: 5, ..ExpOptions::default() }
    }

    #[test]
    fn agent_counts_scale_with_population() {
        assert_eq!(agent_counts(20_000), vec![1, 5, 10, 20, 50, 100, 200]);
        assert_eq!(agent_counts(2_000), vec![1, 5, 10, 20, 50, 100]);
        assert_eq!(agent_counts(240), vec![1, 5, 10]);
        assert_eq!(agent_counts(20), vec![1]);
    }

    #[test]
    fn sweep_shapes_match_the_paper() {
        let rows = agent_sweep(&tiny_opts());
        assert_eq!(rows.len(), 3);
        // Traffic grows with agents (undefended).
        let first = &rows[0];
        let last = rows.last().unwrap();
        assert!(last.undefended.traffic_per_tick > first.undefended.traffic_per_tick);
        // Attack hurts success; DD-POLICE restores most of it at 10 agents.
        let big = last;
        assert!(big.undefended.success < big.baseline.success);
        assert!(big.defended.success > big.undefended.success);
    }

    #[test]
    fn figures_render_from_one_sweep() {
        let rows = agent_sweep(&tiny_opts());
        let t9 = fig9(&rows);
        let t10 = fig10(&rows);
        let t11 = fig11(&rows);
        assert_eq!(t9.rows.len(), rows.len());
        assert_eq!(t10.rows.len(), rows.len());
        assert_eq!(t11.rows.len(), rows.len());
    }
}
