//! `churn` — open-membership churn × whitewashing sweep (robustness
//! extension beyond the paper).
//!
//! The paper evaluates DD-POLICE on a fixed population; its only concession
//! to dynamics is that a cut agent "can join the system again" under the
//! same identity. This sweep measures the defense under the conditions a
//! real Gnutella deployment has: session-model churn (Poisson arrivals of
//! brand-new peers, permanent leaves, silent crashes) combined with
//! *whitewashing* agents that shed their identity after being isolated and
//! rejoin under fresh `NodeId`s.
//!
//! Grid: mean session length × session-length distribution × whitewash dwell
//! × readmission policy, with paired seeds (every cell of one configuration
//! index sees identical topology and attack placement). Each cell is paired
//! with a zero-agent baseline on the same seed to isolate *residual damage*
//! — the bogus-query success-rate loss that churn-plus-whitewash still
//! inflicts through the defense. Emits the machine-readable
//! `BENCH_churn.json` tracked PR-over-PR.

use crate::output::{f, Table};
use crate::scenario::ExpOptions;
use ddp_attack::WhitewashPlan;
use ddp_metrics::{damage_rate, json_array, JsonObj, TimeSeries};
use ddp_police::{DdPolice, DdPoliceConfig, ReadmissionPolicy};
use ddp_sim::{CutRecord, SessionConfig, SimConfig, Simulation, WhitewashRecord};
use ddp_topology::{TopologyConfig, TopologyModel};
use ddp_workload::LifetimeModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use super::detection_latency;

/// Swept mean session lengths (ticks = minutes).
pub const MEAN_SESSIONS: [f64; 2] = [10.0, 5.0];
/// Swept whitewash dwell times (ticks offline before the identity change).
pub const DWELLS: [u32; 2] = [1, 3];
/// Swept session-length distributions.
pub const SESSION_MODELS: [&str; 2] = ["exponential", "lognormal"];

/// Verdict-state TTL used by every cell: the churn-hardened configuration
/// (crashed suspects' clocks are swept; see `DdPoliceConfig`).
const SUSPECT_TTL: u32 = 8;

/// One measured grid cell (replicate-averaged).
#[derive(Debug, Clone)]
pub struct ChurnCell {
    /// Initial overlay size.
    pub peers: usize,
    /// Simulated minutes.
    pub ticks: usize,
    /// Initial DDoS agents (whitewashing).
    pub agents: usize,
    /// Mean session length of good peers (ticks).
    pub mean_session_ticks: f64,
    /// Session-length distribution ("exponential" | "lognormal").
    pub session_model: String,
    /// Whitewash dwell (ticks offline before rejoining fresh).
    pub dwell_ticks: u32,
    /// Whether the readmission (quarantine/probation) lifecycle is on.
    pub readmission: bool,
    /// Brand-new peers that joined (session stream).
    pub joins: f64,
    /// Permanent departures (leaves + crashes).
    pub departures: f64,
    /// Completed whitewash identity changes.
    pub rebirths: f64,
    /// Mean ticks to each initial agent's first cut (censored at ticks+1).
    pub detection_latency: f64,
    /// Reborn identities that were cut again.
    pub redetected: f64,
    /// Mean ticks from rebirth to the fresh identity's first cut (reborn
    /// identities never re-cut censored at run end).
    pub redetection_latency: f64,
    /// `redetected / rebirths` (0 when nothing was reborn).
    pub redetection_rate: f64,
    /// All defensive disconnections performed.
    pub cuts_total: f64,
    /// Fraction of cuts that hit good peers.
    pub wrongful_cut_rate: f64,
    /// Mean damage rate over the stabilized last quarter vs the paired
    /// zero-agent baseline (residual bogus-query damage).
    pub residual_damage: f64,
}

impl ChurnCell {
    fn to_json(&self) -> String {
        JsonObj::new()
            .u64("peers", self.peers as u64)
            .u64("ticks", self.ticks as u64)
            .u64("agents", self.agents as u64)
            .f64("mean_session_ticks", self.mean_session_ticks)
            .str("session_model", &self.session_model)
            .u64("dwell_ticks", u64::from(self.dwell_ticks))
            .str("readmission", if self.readmission { "on" } else { "off" })
            .f64("joins", self.joins)
            .f64("departures", self.departures)
            .f64("rebirths", self.rebirths)
            .f64("detection_latency", self.detection_latency)
            .f64("redetected", self.redetected)
            .f64("redetection_latency", self.redetection_latency)
            .f64("redetection_rate", self.redetection_rate)
            .f64("cuts_total", self.cuts_total)
            .f64("wrongful_cut_rate", self.wrongful_cut_rate)
            .f64("residual_damage", self.residual_damage)
            .finish()
    }
}

/// Every key a cell object must carry, in emission order (the schema).
pub const CHURN_CELL_KEYS: [&str; 17] = [
    "peers",
    "ticks",
    "agents",
    "mean_session_ticks",
    "session_model",
    "dwell_ticks",
    "readmission",
    "joins",
    "departures",
    "rebirths",
    "detection_latency",
    "redetected",
    "redetection_latency",
    "redetection_rate",
    "cuts_total",
    "wrongful_cut_rate",
    "residual_damage",
];

/// Schema identifier embedded in the emitted JSON.
pub const CHURN_SCHEMA: &str = "ddp-bench-churn/v1";

fn session_length(model: &str, mean: f64) -> LifetimeModel {
    match model {
        "exponential" => LifetimeModel::Exponential { mean_min: mean },
        "lognormal" => LifetimeModel::LogNormal { mean_min: mean, var_min: mean / 2.0 },
        other => panic!("unknown session model {other}"),
    }
}

/// Re-detection after whitewashing: for each identity change, the ticks from
/// rebirth to the fresh identity's first defensive cut. Reborn identities
/// the run never re-cut are censored at `ticks + 1`. Returns
/// `(redetected count, mean latency over all rebirths)`.
pub fn redetection_stats(
    cut_log: &[CutRecord],
    rebirths: &[WhitewashRecord],
    ticks: usize,
) -> (usize, f64) {
    if rebirths.is_empty() {
        return (0, 0.0);
    }
    let mut redetected = 0usize;
    let mut sum = 0.0;
    for rec in rebirths {
        let first =
            cut_log.iter().find(|c| c.suspect == rec.new && c.tick >= rec.tick).map(|c| c.tick);
        match first {
            Some(t) => {
                redetected += 1;
                sum += f64::from(t - rec.tick);
            }
            None => sum += f64::from((ticks as u32 + 1).saturating_sub(rec.tick)),
        }
    }
    (redetected, sum / rebirths.len() as f64)
}

/// One run's raw numbers before replicate averaging.
struct RawRun {
    joins: u64,
    departures: u64,
    rebirths: usize,
    detection_latency: f64,
    redetected: usize,
    redetection_latency: f64,
    cuts_total: usize,
    wrongful_cuts: usize,
    success_rate: Vec<f64>,
}

fn run_once(
    peers: usize,
    ticks: usize,
    agents: usize,
    sess: &SessionConfig,
    dwell: u32,
    readmission_on: bool,
    seed: u64,
) -> RawRun {
    let police_cfg = DdPoliceConfig {
        readmission: ReadmissionPolicy { enabled: readmission_on, ..ReadmissionPolicy::default() },
        suspect_ttl_ticks: SUSPECT_TTL,
        ..DdPoliceConfig::default()
    };
    let cfg = SimConfig {
        topology: TopologyConfig { n: peers, model: TopologyModel::BarabasiAlbert { m: 3 } },
        churn: false,
        session: Some(sess.clone()),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(cfg, DdPolice::new(police_cfg, peers), seed);
    let initial_agents = if agents > 0 {
        // Same selection constant as `Scenario::run`, so a churn cell's
        // agents sit on the same peers as the equivalent static scenario.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdd05_ee1f);
        WhitewashPlan::new(agents, dwell).apply(&mut sim, &mut rng)
    } else {
        Vec::new()
    };
    for _ in 0..ticks {
        sim.step();
    }
    let stats = sim.session_stats();
    let rebirths: Vec<WhitewashRecord> = sim.whitewash_log().to_vec();
    let result = sim.finish();
    let (redetected, redetection_latency) = redetection_stats(&result.cut_log, &rebirths, ticks);
    let wrongful_cuts = result.cut_log.iter().filter(|c| !c.suspect_was_attacker).count();
    // First-detection latency is over the *initial* identities only —
    // reborn identities (which are also cut, usually many more times than
    // there are original agents) are scored by `redetection_stats` instead.
    let initial_cuts: Vec<CutRecord> =
        result.cut_log.iter().filter(|c| initial_agents.contains(&c.suspect)).copied().collect();
    RawRun {
        joins: stats.joins,
        departures: stats.leaves + stats.crashes,
        rebirths: rebirths.len(),
        detection_latency: detection_latency(&initial_cuts, agents, ticks),
        redetected,
        redetection_latency,
        cuts_total: result.cut_log.len(),
        wrongful_cuts,
        success_rate: result.series.success_rate.values,
    }
}

/// Residual damage of an attacked run against its paired zero-agent baseline
/// on the same seed: mean `D(t)` over the stabilized last quarter.
fn residual_damage(attacked: &[f64], baseline: &[f64]) -> f64 {
    let mut damage = TimeSeries::new("damage_rate");
    for (t, &s1) in attacked.iter().enumerate() {
        let s0 = baseline.get(t).copied().unwrap_or(1.0);
        damage.push(damage_rate(s0, s1));
    }
    damage.tail_mean((damage.len() / 4).max(1))
}

/// The sweep grid: `(mean_session, model, dwell, readmission)` plus the
/// per-cell run scale. Smoke keeps two cells that still exercise both
/// readmission policies end to end.
#[allow(clippy::type_complexity)]
pub fn churn_grid_params(
    opts: &ExpOptions,
) -> Vec<(usize, usize, usize, f64, &'static str, u32, bool)> {
    if opts.smoke {
        return vec![
            (300, 15, 6, 5.0, "exponential", 1, false),
            (300, 15, 6, 5.0, "exponential", 1, true),
        ];
    }
    let mut grid = Vec::new();
    for &mean in &MEAN_SESSIONS {
        for &model in &SESSION_MODELS {
            for &dwell in &DWELLS {
                for readmission in [false, true] {
                    grid.push((
                        opts.peers,
                        opts.ticks,
                        opts.agents,
                        mean,
                        model,
                        dwell,
                        readmission,
                    ));
                }
            }
        }
    }
    grid
}

/// Run the full grid. Exposed separately from [`churn`] so tests can assert
/// on the numbers rather than on formatted strings.
pub fn churn_grid(opts: &ExpOptions) -> Vec<ChurnCell> {
    let grid = churn_grid_params(opts);
    grid.par_iter()
        .enumerate()
        .map(|(c, &(peers, ticks, agents, mean, model, dwell, readmission))| {
            let sess = SessionConfig {
                arrival_rate_per_tick: peers as f64 / mean.max(1.0),
                session_length: session_length(model, mean),
                crash_fraction: 0.25,
                max_peers: peers.saturating_mul(2),
            };
            let mut cell = ChurnCell {
                peers,
                ticks,
                agents,
                mean_session_ticks: mean,
                session_model: model.to_string(),
                dwell_ticks: dwell,
                readmission,
                joins: 0.0,
                departures: 0.0,
                rebirths: 0.0,
                detection_latency: 0.0,
                redetected: 0.0,
                redetection_latency: 0.0,
                redetection_rate: 0.0,
                cuts_total: 0.0,
                wrongful_cut_rate: 0.0,
                residual_damage: 0.0,
            };
            for r in 0..opts.replicates.max(1) {
                let seed = opts.seed_for(c, r);
                let run = run_once(peers, ticks, agents, &sess, dwell, readmission, seed);
                // Paired baseline: same seed, same churn stream, no agents.
                let base = run_once(peers, ticks, 0, &sess, dwell, readmission, seed);
                cell.joins += run.joins as f64;
                cell.departures += run.departures as f64;
                cell.rebirths += run.rebirths as f64;
                cell.detection_latency += run.detection_latency;
                cell.redetected += run.redetected as f64;
                cell.redetection_latency += run.redetection_latency;
                cell.redetection_rate += if run.rebirths > 0 {
                    run.redetected as f64 / run.rebirths as f64
                } else {
                    0.0
                };
                cell.cuts_total += run.cuts_total as f64;
                cell.wrongful_cut_rate += if run.cuts_total > 0 {
                    run.wrongful_cuts as f64 / run.cuts_total as f64
                } else {
                    0.0
                };
                cell.residual_damage += residual_damage(&run.success_rate, &base.success_rate);
            }
            let n = opts.replicates.max(1) as f64;
            cell.joins /= n;
            cell.departures /= n;
            cell.rebirths /= n;
            cell.detection_latency /= n;
            cell.redetected /= n;
            cell.redetection_latency /= n;
            cell.redetection_rate /= n;
            cell.cuts_total /= n;
            cell.wrongful_cut_rate /= n;
            cell.residual_damage /= n;
            cell
        })
        .collect()
}

/// Render the sweep results as the committed `BENCH_churn.json` document.
pub fn churn_json(cells: &[ChurnCell], seed: u64) -> String {
    JsonObj::new()
        .str("schema", CHURN_SCHEMA)
        .str("generated_by", "ddp-experiments churn")
        .u64("seed", seed)
        .raw("cells", &json_array(cells.iter().map(|c| c.to_json())))
        .finish()
}

/// Structural validation of a `BENCH_churn.json` document: schema tag,
/// balanced nesting, and every cell carrying every schema key. (The
/// workspace has no JSON parser; this is the CI smoke check.)
pub fn validate_churn_json(doc: &str) -> Result<(), String> {
    let doc = doc.trim();
    if !doc.starts_with(&format!("{{\"schema\":\"{CHURN_SCHEMA}\"")) {
        return Err(format!("document does not start with the {CHURN_SCHEMA} schema tag"));
    }
    if doc.matches('{').count() != doc.matches('}').count()
        || doc.matches('[').count() != doc.matches(']').count()
    {
        return Err("unbalanced braces/brackets".into());
    }
    let Some(cells_at) = doc.find("\"cells\":[") else {
        return Err("missing cells array".into());
    };
    let cells = &doc[cells_at + "\"cells\":[".len()..];
    let n_cells = cells.matches("{\"peers\":").count();
    if n_cells == 0 {
        return Err("cells array contains no cell objects".into());
    }
    for key in CHURN_CELL_KEYS {
        let quoted = format!("\"{key}\":");
        let found = cells.matches(quoted.as_str()).count();
        if found != n_cells {
            return Err(format!("key {key} present in {found}/{n_cells} cells"));
        }
    }
    Ok(())
}

/// Run the sweep, write `BENCH_churn.json` into the current directory, and
/// return the human-readable table.
pub fn churn(opts: &ExpOptions) -> Table {
    let cells = churn_grid(opts);
    let mut table = Table::new(
        if opts.smoke { "churn_smoke" } else { "churn" },
        "Churn x whitewash sweep: detection and re-detection under open membership",
        &[
            "model",
            "mean",
            "dwell",
            "readm",
            "joins",
            "departs",
            "rebirths",
            "detect",
            "redetect%",
            "redetect lat",
            "wrongful%",
            "resid dmg",
        ],
    );
    for c in &cells {
        table.push_row(vec![
            c.session_model.clone(),
            f(c.mean_session_ticks, 0),
            c.dwell_ticks.to_string(),
            if c.readmission { "on" } else { "off" }.to_string(),
            f(c.joins, 0),
            f(c.departures, 0),
            f(c.rebirths, 1),
            f(c.detection_latency, 2),
            f(c.redetection_rate * 100.0, 0),
            f(c.redetection_latency, 2),
            f(c.wrongful_cut_rate * 100.0, 1),
            f(c.residual_damage, 3),
        ]);
    }
    let doc = churn_json(&cells, opts.seed);
    if let Err(e) = validate_churn_json(&doc) {
        // A document that fails its own schema must never be committed; the
        // CI smoke run relies on this exit to catch emission drift.
        eprintln!("[churn] FATAL: emitted JSON failed validation: {e}");
        std::process::exit(2);
    }
    let path = "BENCH_churn.json";
    match std::fs::write(path, format!("{doc}\n")) {
        Ok(()) => println!("[churn] wrote {path}"),
        Err(e) => eprintln!("[churn] failed to write {path}: {e}"),
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddp_topology::NodeId;

    fn fake_cell(readmission: bool) -> ChurnCell {
        ChurnCell {
            peers: 300,
            ticks: 15,
            agents: 6,
            mean_session_ticks: 5.0,
            session_model: "exponential".into(),
            dwell_ticks: 1,
            readmission,
            joins: 800.0,
            departures: 790.0,
            rebirths: 9.0,
            detection_latency: 3.5,
            redetected: 7.0,
            redetection_latency: 4.1,
            redetection_rate: 0.78,
            cuts_total: 60.0,
            wrongful_cut_rate: 0.05,
            residual_damage: 0.02,
        }
    }

    #[test]
    fn emitted_json_validates() {
        let doc = churn_json(&[fake_cell(false), fake_cell(true)], 42);
        validate_churn_json(&doc).unwrap();
    }

    #[test]
    fn validation_rejects_drift() {
        let doc = churn_json(&[fake_cell(true)], 42);
        assert!(validate_churn_json(&doc.replace("redetection_rate", "rr")).is_err());
        assert!(validate_churn_json(&doc.replace("ddp-bench-churn/v1", "v2")).is_err());
        assert!(validate_churn_json("{\"schema\":\"ddp-bench-churn/v1\",\"cells\":[]}").is_err());
        validate_churn_json(&doc).unwrap();
    }

    #[test]
    fn redetection_censors_never_recut_rebirths() {
        let rebirths = vec![
            WhitewashRecord { tick: 5, old: NodeId(1), new: NodeId(300) },
            WhitewashRecord { tick: 8, old: NodeId(2), new: NodeId(301) },
        ];
        let cuts = vec![CutRecord {
            tick: 9,
            observer: NodeId(7),
            suspect: NodeId(300),
            suspect_was_attacker: true,
        }];
        // 300 re-cut after 4 ticks; 301 never, censored at 16 - 8 = 8.
        let (n, lat) = redetection_stats(&cuts, &rebirths, 15);
        assert_eq!(n, 1);
        assert!((lat - 6.0).abs() < 1e-9, "(4 + 8) / 2, got {lat}");
        assert_eq!(redetection_stats(&cuts, &[], 15), (0, 0.0));
    }

    /// The acceptance property: under both readmission policies the sweep
    /// shows the full cut → whitewash rejoin → re-cut cycle, with measured
    /// re-detection latency.
    #[test]
    fn smoke_cells_show_rebirth_and_redetection_under_both_policies() {
        let opts = ExpOptions { seed: 42, smoke: true, ..ExpOptions::default() };
        let cells = churn_grid(&opts);
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().any(|c| c.readmission) && cells.iter().any(|c| !c.readmission));
        for c in &cells {
            assert!(c.joins > 0.0 && c.departures > 0.0, "churn must actually happen: {c:?}");
            assert!(c.rebirths > 0.0, "whitewash must trigger (readmission {})", c.readmission);
            assert!(
                c.redetected > 0.0,
                "a reborn agent must be re-detected (readmission {})",
                c.readmission
            );
            assert!(c.redetection_latency > 0.0);
            assert!(c.detection_latency > 0.0);
        }
    }
}
