//! Future-work study (§5): overlay DDoS on a *structured* P2P system.
//!
//! Runs the same attacker population against the flooding overlay and the
//! Chord-like DHT, with and without their respective defenses, quantifying
//! the structural claim: unicast lookup routing removes the per-query
//! amplification that makes flooding overlays so fragile, and makes
//! origination detection local (no Buddy Group needed).

use crate::output::{pct, Table};
use crate::scenario::{DefenseKind, ExpOptions, Scenario};
use ddp_dht::{DhtAttack, DhtConfig, DhtPolice, DhtSimulation};
use rayon::prelude::*;

/// Compare flooding-overlay vs DHT under the same agent counts.
pub fn structured(opts: &ExpOptions) -> Table {
    let ks: Vec<usize> =
        [5usize, 20, 50, 100].iter().copied().filter(|&k| k * 20 <= opts.peers).collect();

    #[derive(Clone)]
    struct Row {
        agents: usize,
        flood_undef: f64,
        flood_def: f64,
        dht_undef: f64,
        dht_def: f64,
        dht_hotspot: f64,
    }

    let rows: Vec<Row> = ks
        .par_iter()
        .map(|&k| {
            let flood = |defense: DefenseKind| {
                Scenario::builder()
                    .peers(opts.peers)
                    .ticks(opts.ticks)
                    .attackers(k)
                    .defense(defense)
                    .seed(opts.seed)
                    .build()
                    .run()
                    .summary
                    .success_rate_stable
            };
            let dht = |attack: DhtAttack, defense: Option<DhtPolice>| {
                let mut sim = DhtSimulation::new(
                    DhtConfig { peers: opts.peers, attack, defense, ..DhtConfig::default() },
                    opts.seed,
                );
                sim.compromise(k);
                sim.run(opts.ticks).summary.success_rate_stable
            };
            Row {
                agents: k,
                flood_undef: flood(DefenseKind::None),
                flood_def: flood(DefenseKind::DdPolice { cut_threshold: 5.0 }),
                dht_undef: dht(DhtAttack::Uniform, None),
                dht_def: dht(DhtAttack::Uniform, Some(DhtPolice::default())),
                dht_hotspot: dht(DhtAttack::Hotspot { victim_key: 42 }, None),
            }
        })
        .collect();

    let mut t = Table::new(
        "structured_vs_flooding",
        format!(
            "Future work (§5): same agents on flooding overlay vs Chord-like DHT ({} peers, stable success)",
            opts.peers
        ),
        &[
            "agents",
            "flooding, no defense",
            "flooding, DD-POLICE",
            "DHT, no defense",
            "DHT, origination detector",
            "DHT hotspot, no defense",
        ],
    );
    for r in &rows {
        t.push_row(vec![
            r.agents.to_string(),
            pct(r.flood_undef),
            pct(r.flood_def),
            pct(r.dht_undef),
            pct(r.dht_def),
            pct(r.dht_hotspot),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structured_comparison_renders() {
        let opts =
            ExpOptions { peers: 300, ticks: 5, seed: 7, agents: 10, ..ExpOptions::default() };
        let t = structured(&opts);
        assert_eq!(t.rows.len(), 1); // only k = 5 fits the 5% density cap
    }
}
