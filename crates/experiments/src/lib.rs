//! Experiment harness: one runner per table/figure of the paper.
//!
//! Every runner produces a [`output::Table`] with the same rows/series the
//! paper reports, printable to stdout and exportable as CSV. The
//! `ddp-experiments` binary exposes each runner as a subcommand; EXPERIMENTS.md
//! records paper-vs-measured values.
//!
//! | runner | reproduces |
//! |--------|------------|
//! | [`runners::table1`] | Table 1 — `Neighbor_Traffic` body layout |
//! | [`runners::fig2`] | Figure 2 — indicator worked example |
//! | [`runners::fig5`] / [`runners::fig6`] | §2.3 single-peer capacity curves |
//! | [`runners::fig9`] / [`runners::fig10`] / [`runners::fig11`] | §3.6 attack-impact sweeps (traffic / response time / success rate) |
//! | [`runners::fig12`] | damage rate over time per cut threshold |
//! | [`runners::fig13`] / [`runners::fig14`] | errors and recovery time vs cut threshold |
//! | [`runners::exchange`] | §3.7.1 neighbor-list exchange policy study |
//! | [`runners::cheating`] | §3.4 report-cheating strategies |
//! | `runners::ablate_*` | design-choice ablations (warning threshold, BG radius, forwarding policy, attacker rejoin, report clamp, list lying, topology) |

pub mod output;
pub mod runners;
pub mod scenario;

pub use output::{ensure_writable_dir, OutputError, Table};
pub use scenario::{DamageReport, DefenseKind, ExpOptions, Scenario, ScenarioReport};
