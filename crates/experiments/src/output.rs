//! Tabular output: aligned stdout rendering and CSV export.

use std::fmt::Write as _;
use std::path::Path;

/// A named table of string cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Identifier, e.g. `fig9_traffic_cost` (also the CSV file stem).
    pub name: String,
    /// Human title, e.g. "Figure 9: average traffic cost".
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(name: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            name: name.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch in {}", self.name);
        self.rows.push(row);
    }

    /// Render to an aligned text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:>w$}  ", c, w = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.min(120)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// CSV encoding (quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Write `<dir>/<name>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Format a float with `d` decimals.
pub fn f(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

/// Format a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t", "Test table", &["a", "long_header", "c"]);
        t.push_row(vec!["1".into(), "2".into(), "3".into()]);
        t.push_row(vec!["10".into(), "x".into(), "hello".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let r = sample().render();
        assert!(r.contains("Test table"));
        assert!(r.contains("long_header"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5); // title, header, rule, 2 rows
    }

    #[test]
    fn csv_roundtrip_simple() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,long_header,c");
        assert_eq!(lines[1], "1,2,3");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("q", "Q", &["x"]);
        t.push_row(vec!["a,b".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("t", "T", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("ddp_test_csv");
        let path = sample().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,long_header,c"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn float_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.4567), "45.7%");
    }
}
