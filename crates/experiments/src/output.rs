//! Tabular output: aligned stdout rendering and CSV export.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A file-output failure that names the offending path — the one thing a
/// user staring at a failed overnight campaign actually needs to know.
#[derive(Debug)]
pub struct OutputError {
    /// What failed: `"create directory"` or `"write"`.
    pub op: &'static str,
    /// The path that could not be created/written.
    pub path: PathBuf,
    /// Underlying OS error.
    pub source: std::io::Error,
}

impl std::fmt::Display for OutputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "could not {} {}: {}", self.op, self.path.display(), self.source)
    }
}

impl std::error::Error for OutputError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Create `dir` (and parents) and prove it is writable by round-tripping a
/// probe file. Runners call this *before* hours of simulation so an
/// unwritable output directory fails in milliseconds, not at the final
/// write.
pub fn ensure_writable_dir(dir: &Path) -> Result<(), OutputError> {
    std::fs::create_dir_all(dir).map_err(|source| OutputError {
        op: "create directory",
        path: dir.to_path_buf(),
        source,
    })?;
    let probe = dir.join(".ddp-write-probe");
    std::fs::write(&probe, b"probe").map_err(|source| OutputError {
        op: "write",
        path: probe.clone(),
        source,
    })?;
    let _ = std::fs::remove_file(&probe);
    Ok(())
}

/// A named table of string cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Identifier, e.g. `fig9_traffic_cost` (also the CSV file stem).
    pub name: String,
    /// Human title, e.g. "Figure 9: average traffic cost".
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(name: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            name: name.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch in {}", self.name);
        self.rows.push(row);
    }

    /// Render to an aligned text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:>w$}  ", c, w = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.min(120)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// CSV encoding (quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Write `<dir>/<name>.csv`. Failures name the path they tripped on.
    pub fn write_csv(&self, dir: &Path) -> Result<PathBuf, OutputError> {
        std::fs::create_dir_all(dir).map_err(|source| OutputError {
            op: "create directory",
            path: dir.to_path_buf(),
            source,
        })?;
        let path = dir.join(format!("{}.csv", self.name));
        std::fs::write(&path, self.to_csv()).map_err(|source| OutputError {
            op: "write",
            path: path.clone(),
            source,
        })?;
        Ok(path)
    }
}

/// Format a float with `d` decimals.
pub fn f(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

/// Format a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t", "Test table", &["a", "long_header", "c"]);
        t.push_row(vec!["1".into(), "2".into(), "3".into()]);
        t.push_row(vec!["10".into(), "x".into(), "hello".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let r = sample().render();
        assert!(r.contains("Test table"));
        assert!(r.contains("long_header"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5); // title, header, rule, 2 rows
    }

    #[test]
    fn csv_roundtrip_simple() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,long_header,c");
        assert_eq!(lines[1], "1,2,3");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("q", "Q", &["x"]);
        t.push_row(vec!["a,b".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("t", "T", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("ddp_test_csv");
        let path = sample().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,long_header,c"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn float_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.4567), "45.7%");
    }

    #[test]
    fn write_csv_failure_names_the_offending_path() {
        // A directory cannot be created below a regular file.
        let file = std::env::temp_dir().join(format!("ddp_not_a_dir_{}", std::process::id()));
        std::fs::write(&file, b"x").unwrap();
        let below = file.join("sub");
        let err = sample().write_csv(&below).unwrap_err();
        assert_eq!(err.op, "create directory");
        assert_eq!(err.path, below);
        assert!(err.to_string().contains(&below.display().to_string()));
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn ensure_writable_dir_probes_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("ddp_probe_{}", std::process::id()));
        ensure_writable_dir(&dir).unwrap();
        assert!(dir.is_dir());
        assert!(!dir.join(".ddp-write-probe").exists(), "probe must be removed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ensure_writable_dir_rejects_unwritable_target() {
        let file = std::env::temp_dir().join(format!("ddp_probe_file_{}", std::process::id()));
        std::fs::write(&file, b"x").unwrap();
        let err = ensure_writable_dir(&file.join("sub")).unwrap_err();
        assert_eq!(err.op, "create directory");
        let _ = std::fs::remove_file(&file);
    }
}
