//! `ddp-experiments` — regenerate every table and figure of the paper.
//!
//! ```text
//! ddp-experiments <command> [--peers N] [--ticks N] [--seed N] [--agents N]
//!                           [--replicates N] [--csv DIR] [--paper-scale]
//!                           [--threads N]
//!
//! commands:
//!   table1      Neighbor_Traffic wire layout (Table 1)
//!   fig2        indicator worked example (Figure 2)
//!   fig5 fig6   single-peer capacity testbed (§2.3)
//!   fig9 fig10 fig11   attack-impact sweeps (§3.6)
//!   consequences       figures 9-11 from one sweep
//!   fig12       damage rate over time per cut threshold
//!   fig13 fig14 errors / recovery time vs cut threshold
//!   exchange    neighbor-list exchange policy study (§3.7.1)
//!   scale       throughput sweep over overlay size × attacker fraction
//!   churn       session-model churn × whitewashing attackers (extension)
//!   fuzz        differential fuzz: engine vs naive reference oracle
//!   soak        crash-recovery chaos soak on the wire mesh
//!   cheating    report-cheating strategies (§3.4)
//!   resilience  lossy/delayed control plane sweep (extension)
//!   collusion   coordinated report-cheating coalitions sweep (extension)
//!   ablations   design-choice ablations
//!   all         everything above
//! ```

use ddp_experiments::runners::{self, emit};
use ddp_experiments::{ensure_writable_dir, ExpOptions};
use ddp_metrics::CountingAlloc;
use std::path::PathBuf;
use std::process::ExitCode;

// Peak-heap proxy read by the `scale` runner; counting wrapper around the
// system allocator, negligible overhead for every other command.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        eprintln!("usage: ddp-experiments <command> [options]; see --help");
        return ExitCode::FAILURE;
    };
    if command == "--help" || command == "-h" || command == "help" {
        println!("{}", HELP);
        return ExitCode::SUCCESS;
    }
    let opts = match parse_options(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Fail fast on unwritable output/checkpoint directories — before hours
    // of simulation, not after.
    for dir in [&opts.csv_dir, &opts.checkpoint_dir].into_iter().flatten() {
        if let Err(e) = ensure_writable_dir(dir) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    match command.as_str() {
        "table1" => emit(&runners::table1(), &opts),
        "fig2" => emit(&runners::fig2(), &opts),
        "fig5" => emit(&runners::fig5(), &opts),
        "fig6" => emit(&runners::fig6(), &opts),
        "fig9" => emit(&runners::fig9(&runners::agent_sweep(&opts)), &opts),
        "fig10" => emit(&runners::fig10(&runners::agent_sweep(&opts)), &opts),
        "fig11" => emit(&runners::fig11(&runners::agent_sweep(&opts)), &opts),
        "consequences" => {
            for t in runners::consequences(&opts) {
                emit(&t, &opts);
            }
        }
        "fig12" => emit(&runners::fig12(&opts), &opts),
        "fig13" => emit(&runners::fig13(&runners::ct_sweep(&opts, &runners::CT_GRID)), &opts),
        "fig14" => emit(&runners::fig14(&runners::ct_sweep(&opts, &runners::CT_GRID)), &opts),
        "ct" => {
            let rows = runners::ct_sweep(&opts, &runners::CT_GRID);
            emit(&runners::fig13(&rows), &opts);
            emit(&runners::fig14(&rows), &opts);
        }
        "exchange" => emit(&runners::exchange(&opts), &opts),
        "scale" => emit(&runners::scale(&opts, Some(&ALLOC)), &opts),
        "sketch" => emit(&runners::sketch(&opts), &opts),
        "churn" => emit(&runners::churn(&opts), &opts),
        "fuzz" => emit(&runners::fuzz(&opts), &opts),
        "structured" => emit(&runners::structured(&opts), &opts),
        "testbed" => match runners::testbed(&opts) {
            Ok(t) => emit(&t, &opts),
            Err(e) => {
                eprintln!("testbed: {e}");
                return ExitCode::FAILURE;
            }
        },
        "soak" => match runners::soak(&opts) {
            Ok(t) => emit(&t, &opts),
            Err(e) => {
                eprintln!("soak: {e}");
                return ExitCode::FAILURE;
            }
        },
        "cheating" => emit(&runners::cheating(&opts), &opts),
        "resilience" => emit(&runners::resilience(&opts), &opts),
        "collusion" => {
            emit(&runners::collusion(&opts), &opts);
            emit(&runners::readmission(&opts), &opts);
        }
        "ablations" => {
            emit(&runners::ablate_warning(&opts), &opts);
            emit(&runners::ablate_radius(&opts), &opts);
            emit(&runners::ablate_forwarding(&opts), &opts);
            emit(&runners::ablate_rejoin(&opts), &opts);
            emit(&runners::ablate_clamp(&opts), &opts);
            emit(&runners::ablate_lists(&opts), &opts);
            emit(&runners::ablate_topology(&opts), &opts);
        }
        "all" => {
            emit(&runners::table1(), &opts);
            emit(&runners::fig2(), &opts);
            emit(&runners::fig5(), &opts);
            emit(&runners::fig6(), &opts);
            for t in runners::consequences(&opts) {
                emit(&t, &opts);
            }
            emit(&runners::fig12(&opts), &opts);
            let rows = runners::ct_sweep(&opts, &runners::CT_GRID);
            emit(&runners::fig13(&rows), &opts);
            emit(&runners::fig14(&rows), &opts);
            emit(&runners::exchange(&opts), &opts);
            emit(&runners::cheating(&opts), &opts);
            emit(&runners::resilience(&opts), &opts);
            emit(&runners::collusion(&opts), &opts);
            emit(&runners::readmission(&opts), &opts);
            emit(&runners::ablate_warning(&opts), &opts);
            emit(&runners::ablate_radius(&opts), &opts);
            emit(&runners::ablate_forwarding(&opts), &opts);
            emit(&runners::ablate_rejoin(&opts), &opts);
            emit(&runners::ablate_clamp(&opts), &opts);
            emit(&runners::ablate_lists(&opts), &opts);
            emit(&runners::ablate_topology(&opts), &opts);
            emit(&runners::structured(&opts), &opts);
        }
        other => {
            eprintln!("unknown command `{other}`; see --help");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

const HELP: &str = "\
ddp-experiments — regenerate every table and figure of
\"Defending P2Ps from Overlay Flooding-based DDoS\" (ICPP 2007).

usage: ddp-experiments <command> [options]

commands:
  table1 fig2 fig5 fig6 fig9 fig10 fig11 consequences
  fig12 fig13 fig14 ct exchange cheating resilience collusion structured
  scale sketch churn fuzz ablations testbed soak all

scale sweeps overlay size × attacker fraction, reporting ticks/sec,
queries/sec, and a peak-heap proxy, and writes BENCH_scale.json.

sketch runs every cell twice — exact counters vs the count-min/space-saving
monitor, same seed — and reports monitor-state memory ratio, missed attacker
cuts, and spurious good-peer cuts, writing BENCH_sketch.json. --smoke runs
the small cell plus the 100k-peer memory-acceptance cell (which must hit
>=4x memory at zero missed cuts, or the run fails).

fuzz runs seeded random scenarios through the engine/oracle differential
harness; on divergence it shrinks the scenario, writes a replayable JSON
reproducer under tests/repro/, and exits nonzero.

churn sweeps session-model churn (arrival rate × session-length
distribution) × whitewash dwell × readmission policy, reporting detection
and re-detection latency, wrongful-cut rate, and residual damage, and
writes BENCH_churn.json.

options:
  --peers N        overlay size (default 2000)
  --ticks N        simulated minutes per run (default 30)
  --seed N         base seed (default 42)
  --agents N       DDoS agents for fixed-attack experiments (default 100)
  --replicates N   averaged seeds per configuration (default 1)
  --csv DIR        also write each table as DIR/<name>.csv
  --paper-scale    shorthand for --peers 20000 (the paper's §3.5 setting)
  --smoke          (scale/churn/fuzz/testbed/soak) reduced grid that just validates the pipeline
  --threads N      tick-engine worker count (default 1; results are
                   byte-identical at every width, only wall clock changes)

testbed runs the sim-vs-wire cross-validation: the same topology and attack
through the in-memory simulator, a mesh of real ddp-servent processes over
loopback TCP, and the same mesh with a SIGKILL'd servent and a socket
severed mid-frame. Needs the ddp-servent binary (same profile, or set
DDP_SERVENT_BIN). --smoke shrinks it to 10 servents x 3 minutes.

soak runs the crash-recovery continuity proof: a chaos-free wire mesh for
the baseline first-cut time, then the same mesh with checkpointing under a
seeded chaos schedule — the servent that cut the attacker is SIGKILL'd
after the cut and restarted from its checkpoint (it must still have the
attacker cut: no readmission-from-amnesia), and a bit-flipped checkpoint
must degrade to a logged cold start. Needs the ddp-servent binary, like
testbed.

checkpointing (currently honored by ct/fig12/fig13/fig14):
  --checkpoint-every N   snapshot full engine state every N ticks (default 0 = off)
  --checkpoint-dir DIR   where .snap files go (default: --csv dir, else .)
  --resume               resume interrupted runs from their checkpoints

A checkpointed run produces bit-identical tables to an uncheckpointed one;
kill it at any point (even kill -9) and rerun the same command with
--resume to fast-forward each run from its last checkpoint. Missing or
corrupt checkpoints are ignored with a warning and that run restarts from
tick 0 — the numbers never change either way.
";

fn parse_options(args: &[String]) -> Result<ExpOptions, String> {
    let mut opts = ExpOptions::default();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<&String, String> {
            *i += 1;
            args.get(*i).ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--peers" => opts.peers = take(&mut i)?.parse().map_err(|e| format!("--peers: {e}"))?,
            "--ticks" => opts.ticks = take(&mut i)?.parse().map_err(|e| format!("--ticks: {e}"))?,
            "--seed" => opts.seed = take(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--agents" => {
                opts.agents = take(&mut i)?.parse().map_err(|e| format!("--agents: {e}"))?
            }
            "--replicates" => {
                opts.replicates = take(&mut i)?.parse().map_err(|e| format!("--replicates: {e}"))?
            }
            "--csv" => opts.csv_dir = Some(PathBuf::from(take(&mut i)?)),
            "--paper-scale" => opts.peers = 20_000,
            "--smoke" => opts.smoke = true,
            "--checkpoint-every" => {
                opts.checkpoint_every =
                    take(&mut i)?.parse().map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            "--checkpoint-dir" => opts.checkpoint_dir = Some(PathBuf::from(take(&mut i)?)),
            "--resume" => opts.resume = true,
            "--threads" => {
                opts.threads = take(&mut i)?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    if opts.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    if opts.agents * 2 > opts.peers {
        return Err(format!(
            "--agents {} is more than half of --peers {}; the paper's agents are a small minority",
            opts.agents, opts.peers
        ));
    }
    Ok(opts)
}
