//! Overlay DDoS agent models.
//!
//! §2.1/§2.3 of the paper characterize the attacker: a compromised peer that
//! "does everything else as a good peer except that it generates and issues a
//! large number of queries during every time unit" — measured at up to
//! 20,000 distinct queries/minute by the modified-LimeWire prototype, and
//! link-capped in the simulation as `Q_d = min{20000, capacity of the link}`.
//! Critically (Figure 1), agents flood *different* queries to each neighbor,
//! making the per-link volumes at one hop's remove look like legitimate
//! forwarding — which is why naive local rate-limiting cuts the wrong peers
//! and DD-POLICE needs Buddy-Group cooperation.
//!
//! §3.4 analyzes the agent's options when asked for `Neighbor_Traffic`
//! reports: answer honestly, inflate, deflate, or stay silent; this crate
//! exposes each as a [`CheatStrategy`].

//! A coalition of agents can additionally coordinate their lies — shield
//! each other or frame an innocent peer ([`CollusionPlan`]), the Byzantine
//! report model PR 2's robust aggregation defends against.

pub mod cheat;
pub mod collusion;
pub mod plan;
pub mod whitewash;

pub use cheat::{CheatFactors, CheatStrategy};
pub use collusion::{CollusionMode, CollusionOutcome, CollusionPlan};
pub use plan::AttackPlan;
pub use whitewash::WhitewashPlan;
