//! Whitewashing: cut agents shed their identity and rejoin clean.
//!
//! The paper concedes that "no mechanism can prevent the DDoS agent from
//! joining the system again"; its rejoin model keeps the agent's *identity*
//! (same address, so a quarantine clock can recognize it). A whitewashing
//! agent is strictly nastier: once DD-POLICE has fully isolated it, it dwells
//! offline for a few minutes, then rejoins under a brand-new `NodeId` with a
//! spotless record — every verdict, counter, and snapshot keyed to the old
//! identity is useless against the new one. Optionally it lies low after
//! rejoining (`quiet_ticks`) so bootstrap neighbors accumulate a benign
//! history before the flood resumes.
//!
//! Detection must therefore start over from the warning threshold; the churn
//! sweep measures that *re-detection latency* against readmission policy.

use crate::cheat::{CheatFactors, CheatStrategy};
use ddp_sim::{Defense, Simulation, WhitewashConfig};
use ddp_topology::NodeId;
use rand::Rng;

/// An attack scenario where every agent whitewashes after being isolated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhitewashPlan {
    /// Number of compromised peers.
    pub agents: usize,
    /// How agents answer Neighbor_Traffic requests (before and after the
    /// identity change — the compromise travels with the operator).
    pub cheat: CheatStrategy,
    /// Distortion magnitudes for the lying strategies.
    pub factors: CheatFactors,
    /// Ticks a fully-isolated agent stays dark before rejoining fresh.
    pub dwell_ticks: u32,
    /// Ticks the reborn identity stays dormant (no flood) after rejoining,
    /// building an innocuous traffic history first. 0 = flood immediately.
    pub quiet_ticks: u32,
}

impl WhitewashPlan {
    /// `agents` honest-reporting agents that rejoin `dwell_ticks` after
    /// being isolated and flood again immediately.
    pub fn new(agents: usize, dwell_ticks: u32) -> Self {
        WhitewashPlan {
            agents,
            cheat: CheatStrategy::Honest,
            factors: CheatFactors::default(),
            dwell_ticks,
            quiet_ticks: 0,
        }
    }

    /// Same plan with a post-rejoin dormancy period.
    pub fn with_quiet(self, quiet_ticks: u32) -> Self {
        WhitewashPlan { quiet_ticks, ..self }
    }

    /// Same plan with a different cheating strategy.
    pub fn with_cheat(self, cheat: CheatStrategy) -> Self {
        WhitewashPlan { cheat, ..self }
    }

    /// Apply the plan: compromise `agents` random peers and arm the engine's
    /// whitewash machinery. Returns the *initial* agent ids; rebirths are
    /// reported by `Simulation::whitewash_log` as they happen.
    pub fn apply<D: Defense, R: Rng + ?Sized>(
        &self,
        sim: &mut Simulation<D>,
        rng: &mut R,
    ) -> Vec<NodeId> {
        let agents =
            crate::AttackPlan { agents: self.agents, cheat: self.cheat, factors: self.factors }
                .apply(sim, rng);
        sim.enable_whitewash(WhitewashConfig {
            dwell_ticks: self.dwell_ticks,
            quiet_ticks: self.quiet_ticks,
        });
        agents
    }
}

impl ddp_snapshot::Snapshottable for WhitewashPlan {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.usize(self.agents);
        enc.put(&self.cheat);
        enc.put(&self.factors);
        enc.u32(self.dwell_ticks);
        enc.u32(self.quiet_ticks);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(WhitewashPlan {
            agents: dec.usize()?,
            cheat: dec.get()?,
            factors: dec.get()?,
            dwell_ticks: dec.u32()?,
            quiet_ticks: dec.u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddp_police::{DdPolice, DdPoliceConfig};
    use ddp_sim::SimConfig;
    use ddp_topology::{TopologyConfig, TopologyModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builder_threads_every_knob() {
        let p = WhitewashPlan::new(7, 3).with_quiet(2).with_cheat(CheatStrategy::Silent);
        assert_eq!(p.agents, 7);
        assert_eq!(p.dwell_ticks, 3);
        assert_eq!(p.quiet_ticks, 2);
        assert_eq!(p.cheat, CheatStrategy::Silent);
    }

    /// End-to-end: an isolated agent is reborn under a fresh id and the
    /// defense has to detect — and cut — the new identity from scratch.
    #[test]
    fn cut_agents_are_reborn_and_recut() {
        let n = 200;
        let cfg = SimConfig {
            topology: TopologyConfig { n, model: TopologyModel::BarabasiAlbert { m: 3 } },
            churn: false,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(cfg, DdPolice::new(DdPoliceConfig::default(), n), 42);
        let mut rng = StdRng::seed_from_u64(42);
        let agents = WhitewashPlan::new(3, 1).apply(&mut sim, &mut rng);
        assert_eq!(agents.len(), 3);
        for _ in 0..20 {
            sim.step();
        }
        let log = sim.whitewash_log().to_vec();
        assert!(!log.is_empty(), "at least one agent was cut and reborn");
        for rec in &log {
            assert!(rec.new.index() >= n, "rebirth grows a fresh slot, never recycles");
            assert!(agents.contains(&rec.old) || log.iter().any(|r| r.new == rec.old));
        }
        // Some reborn identity flooded again and was re-isolated (or is at
        // least being policed): the defense got a second chance and took it.
        let recut = log
            .iter()
            .filter(|r| log.iter().any(|later| later.old == r.new) || !sim.is_online(r.new))
            .count();
        assert!(recut > 0, "no reborn agent was ever re-cut: {log:?}");
    }
}
