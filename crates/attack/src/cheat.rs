//! Report-cheating strategies (§3.4).

use ddp_sim::ReportBehavior;

/// What a compromised peer does when a Buddy Group asks it for a
/// `Neighbor_Traffic` report. Mirrors the three choices §3.4 enumerates for
/// the attacker, plus honesty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheatStrategy {
    /// Report true counts. §3.4 argues this is actually the attacker's best
    /// option ("cheating or not reporting ... could only degrade the effects
    /// of its attacks"), so it is the default in all experiments.
    Honest,
    /// Case 1: "peer j reports a larger number than the number of queries it
    /// really sent to peer m" — makes the innocent forwarder m look *better*
    /// (its outgoing volume is explained away), "not a meaningful cheating".
    InflateSent,
    /// Case 2: report a smaller number, trying to get the innocent forwarder
    /// m disconnected by m's other neighbors — which only isolates the
    /// attacker's own traffic.
    DeflateSent,
    /// Choice 3: "refuse to report"; the protocol then assumes 0, which is
    /// the same as Case 2.
    Silent,
}

/// Distortion magnitudes for the lying strategies. The defaults are the
/// paper's §3.4 example (Case 2 reports 100 instead of 5,000 — a 50×
/// deflation; we use symmetric factors); sweeps can vary them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheatFactors {
    /// Multiplier for [`CheatStrategy::InflateSent`] (> 1).
    pub inflate: f64,
    /// Multiplier for [`CheatStrategy::DeflateSent`] (< 1).
    pub deflate: f64,
}

impl Default for CheatFactors {
    fn default() -> Self {
        CheatFactors { inflate: 50.0, deflate: 0.02 }
    }
}

impl CheatStrategy {
    /// The behavior with the paper's default distortion factors.
    pub fn to_behavior(self) -> ReportBehavior {
        self.to_behavior_with(CheatFactors::default())
    }

    /// The behavior with explicit distortion factors.
    pub fn to_behavior_with(self, factors: CheatFactors) -> ReportBehavior {
        match self {
            CheatStrategy::Honest => ReportBehavior::Honest,
            CheatStrategy::InflateSent => ReportBehavior::Inflate(factors.inflate),
            CheatStrategy::DeflateSent => ReportBehavior::Deflate(factors.deflate),
            CheatStrategy::Silent => ReportBehavior::Silent,
        }
    }

    /// All strategies, for sweep experiments.
    pub fn all() -> [CheatStrategy; 4] {
        [
            CheatStrategy::Honest,
            CheatStrategy::InflateSent,
            CheatStrategy::DeflateSent,
            CheatStrategy::Silent,
        ]
    }

    /// Short label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            CheatStrategy::Honest => "honest",
            CheatStrategy::InflateSent => "inflate",
            CheatStrategy::DeflateSent => "deflate",
            CheatStrategy::Silent => "silent",
        }
    }
}

impl ddp_snapshot::Snapshottable for CheatStrategy {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.u8(match self {
            CheatStrategy::Honest => 0,
            CheatStrategy::InflateSent => 1,
            CheatStrategy::DeflateSent => 2,
            CheatStrategy::Silent => 3,
        });
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(match dec.u8()? {
            0 => CheatStrategy::Honest,
            1 => CheatStrategy::InflateSent,
            2 => CheatStrategy::DeflateSent,
            3 => CheatStrategy::Silent,
            _ => return Err(ddp_snapshot::SnapshotError::Corrupt { what: "cheat strategy tag" }),
        })
    }
}

impl ddp_snapshot::Snapshottable for CheatFactors {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.f64(self.inflate);
        enc.f64(self.deflate);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(CheatFactors { inflate: dec.f64()?, deflate: dec.f64()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_maps_to_honest() {
        assert_eq!(CheatStrategy::Honest.to_behavior(), ReportBehavior::Honest);
    }

    #[test]
    fn inflate_scales_up_and_deflate_down() {
        match CheatStrategy::InflateSent.to_behavior() {
            ReportBehavior::Inflate(f) => assert!(f > 1.0),
            other => panic!("expected inflate, got {other:?}"),
        }
        match CheatStrategy::DeflateSent.to_behavior() {
            ReportBehavior::Deflate(f) => assert!(f < 1.0),
            other => panic!("expected deflate, got {other:?}"),
        }
    }

    #[test]
    fn custom_factors_override_the_defaults() {
        let f = CheatFactors { inflate: 3.0, deflate: 0.5 };
        assert_eq!(CheatStrategy::InflateSent.to_behavior_with(f), ReportBehavior::Inflate(3.0));
        assert_eq!(CheatStrategy::DeflateSent.to_behavior_with(f), ReportBehavior::Deflate(0.5));
        assert_eq!(CheatStrategy::Honest.to_behavior_with(f), ReportBehavior::Honest);
        assert_eq!(CheatStrategy::Silent.to_behavior_with(f), ReportBehavior::Silent);
    }

    #[test]
    fn default_factors_match_the_paper() {
        assert_eq!(CheatFactors::default(), CheatFactors { inflate: 50.0, deflate: 0.02 });
        assert_eq!(CheatStrategy::DeflateSent.to_behavior(), ReportBehavior::Deflate(0.02));
    }

    #[test]
    fn all_strategies_have_distinct_labels() {
        let labels: Vec<_> = CheatStrategy::all().iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
