//! Coordinated report-cheating coalitions (beyond §3.4's lone cheater).
//!
//! The paper analyzes a *single* agent distorting its own reports and
//! concludes honest reporting is the attacker's best move. A coalition
//! changes that calculus: colluders can lie about *each other* (shielding)
//! or gang up on an innocent peer (framing) — the Byzantine cases PR 2's
//! robust aggregation exists to survive.
//!
//! * [`CollusionMode::Shield`]: the flooding agents also sit in each
//!   other's Buddy Groups and deflate the `received_from_suspect` counts
//!   they report about fellow agents, hiding the flood from the General
//!   Indicator.
//! * [`CollusionMode::Frame`]: a fraction of an innocent victim's
//!   neighbors are compromised; they flood (so the victim's forwarding
//!   crosses the warning threshold at its other neighbors) and inflate the
//!   `received_from_suspect` counts they report about the victim,
//!   manufacturing phantom output that convicts it under sum aggregation.

use ddp_sim::{Defense, ReportBehavior, Simulation};
use ddp_topology::NodeId;
use rand::seq::index::sample;
use rand::Rng;

/// What the coalition lies about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CollusionMode {
    /// `agents` flooding colluders, grown as one adjacent cluster so they
    /// sit in each other's Buddy Groups, each deflating its
    /// `received_from_suspect` claims about fellow colluders by `deflate`
    /// (< 1).
    Shield {
        /// Coalition size.
        agents: usize,
        /// Deflation factor for claims about fellow colluders.
        deflate: f64,
    },
    /// `⌈fraction × degree(victim)⌉` of the victim's neighbors become
    /// flooding colluders that inflate their `received_from_suspect`
    /// claims about the victim by `inflate` (> 1). The victim is the
    /// highest-degree good peer — the best-connected, most damaging peer
    /// to frame.
    Frame {
        /// Fraction of the victim's neighborhood that colludes, `0.0..=1.0`.
        fraction: f64,
        /// Inflation factor for claims about the victim.
        inflate: f64,
    },
}

/// A coordinated attack: flooding agents whose reports implement `mode`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollusionPlan {
    /// The coalition's lie.
    pub mode: CollusionMode,
}

/// Ground truth of an applied [`CollusionPlan`], for error accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollusionOutcome {
    /// The framed innocent peer (`None` in shield mode).
    pub victim: Option<NodeId>,
    /// The compromised peers, in application order.
    pub colluders: Vec<NodeId>,
}

impl CollusionPlan {
    /// A shielding coalition.
    pub fn shield(agents: usize, deflate: f64) -> Self {
        CollusionPlan { mode: CollusionMode::Shield { agents, deflate } }
    }

    /// A framing coalition.
    pub fn frame(fraction: f64, inflate: f64) -> Self {
        CollusionPlan { mode: CollusionMode::Frame { fraction, inflate } }
    }

    /// Apply the plan: compromise the coalition and return the ground truth.
    pub fn apply<D: Defense, R: Rng + ?Sized>(
        &self,
        sim: &mut Simulation<D>,
        rng: &mut R,
    ) -> CollusionOutcome {
        match self.mode {
            CollusionMode::Shield { agents, deflate } => {
                let colluders = adjacent_cluster(sim, agents, rng);
                for &c in &colluders {
                    sim.make_attacker(c, ReportBehavior::ShieldColluders { factor: deflate });
                }
                CollusionOutcome { victim: None, colluders }
            }
            CollusionMode::Frame { fraction, inflate } => {
                let Some(victim) = highest_degree_good_peer(sim) else {
                    return CollusionOutcome { victim: None, colluders: Vec::new() };
                };
                let neighbors: Vec<NodeId> =
                    sim.overlay().neighbors(victim).iter().map(|h| h.peer).collect();
                let want = ((neighbors.len() as f64) * fraction.clamp(0.0, 1.0)).ceil() as usize;
                let take = want.min(neighbors.len());
                let colluders: Vec<NodeId> = if take == 0 {
                    Vec::new()
                } else {
                    sample(rng, neighbors.len(), take).into_iter().map(|i| neighbors[i]).collect()
                };
                for &c in &colluders {
                    sim.make_attacker(c, ReportBehavior::FrameVictim { victim, inflate });
                }
                CollusionOutcome { victim: Some(victim), colluders }
            }
        }
    }
}

impl ddp_snapshot::Snapshottable for CollusionMode {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        match *self {
            CollusionMode::Shield { agents, deflate } => {
                enc.u8(0);
                enc.usize(agents);
                enc.f64(deflate);
            }
            CollusionMode::Frame { fraction, inflate } => {
                enc.u8(1);
                enc.f64(fraction);
                enc.f64(inflate);
            }
        }
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(match dec.u8()? {
            0 => CollusionMode::Shield { agents: dec.usize()?, deflate: dec.f64()? },
            1 => CollusionMode::Frame { fraction: dec.f64()?, inflate: dec.f64()? },
            _ => return Err(ddp_snapshot::SnapshotError::Corrupt { what: "collusion mode tag" }),
        })
    }
}

impl ddp_snapshot::Snapshottable for CollusionPlan {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.put(&self.mode);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(CollusionPlan { mode: dec.get()? })
    }
}

impl ddp_snapshot::Snapshottable for CollusionOutcome {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.put(&self.victim.map(|v| v.0));
        enc.usize(self.colluders.len());
        for c in &self.colluders {
            enc.u32(c.0);
        }
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        let victim = dec.get::<Option<u32>>()?.map(NodeId);
        let n = dec.len("collusion colluders")?;
        let mut colluders = Vec::with_capacity(n);
        for _ in 0..n {
            colluders.push(NodeId(dec.u32()?));
        }
        Ok(CollusionOutcome { victim, colluders })
    }
}

/// The highest-degree online good peer (lowest id on ties): deterministic
/// per simulation, so paired-seed sweeps frame the same victim.
fn highest_degree_good_peer<D: Defense>(sim: &Simulation<D>) -> Option<NodeId> {
    let n = sim.config().peers();
    let mut best: Option<(usize, NodeId)> = None;
    for i in 0..n {
        let node = NodeId::from_index(i);
        if sim.role(node).is_attacker() || !sim.is_online(node) {
            continue;
        }
        let deg = sim.overlay().degree(node);
        if deg > 0 && best.is_none_or(|(bd, _)| deg > bd) {
            best = Some((deg, node));
        }
    }
    best.map(|(_, node)| node)
}

/// Grow a connected cluster of `want` good peers from a random seed
/// (breadth-first over the overlay), so shield colluders actually appear in
/// each other's Buddy Groups.
fn adjacent_cluster<D: Defense, R: Rng + ?Sized>(
    sim: &Simulation<D>,
    want: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let n = sim.config().peers();
    if want == 0 || n == 0 {
        return Vec::new();
    }
    let eligible = |node: NodeId| {
        sim.is_online(node) && !sim.role(node).is_attacker() && sim.overlay().degree(node) > 0
    };
    // Random connected seed (bounded rejection sampling, then linear scan).
    let mut seed = None;
    for _ in 0..64 {
        let cand = NodeId::from_index(rng.gen_range(0..n));
        if eligible(cand) {
            seed = Some(cand);
            break;
        }
    }
    let seed = seed.or_else(|| (0..n).map(NodeId::from_index).find(|&c| eligible(c)));
    let Some(seed) = seed else {
        return Vec::new();
    };
    let mut cluster = vec![seed];
    let mut in_cluster = vec![false; n];
    in_cluster[seed.index()] = true;
    let mut frontier = 0;
    while cluster.len() < want && frontier < cluster.len() {
        let node = cluster[frontier];
        frontier += 1;
        for h in sim.overlay().neighbors(node) {
            if cluster.len() >= want {
                break;
            }
            if !in_cluster[h.peer.index()] && eligible(h.peer) {
                in_cluster[h.peer.index()] = true;
                cluster.push(h.peer);
            }
        }
    }
    cluster
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddp_sim::{NoDefense, SimConfig};
    use ddp_topology::{TopologyConfig, TopologyModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sim(n: usize, seed: u64) -> Simulation<NoDefense> {
        let cfg = SimConfig {
            topology: TopologyConfig { n, model: TopologyModel::BarabasiAlbert { m: 3 } },
            churn: false,
            ..SimConfig::default()
        };
        Simulation::new(cfg, NoDefense, seed)
    }

    #[test]
    fn frame_compromises_the_requested_neighbor_fraction() {
        let mut s = sim(200, 5);
        let mut rng = StdRng::seed_from_u64(9);
        let out = CollusionPlan::frame(0.5, 40.0).apply(&mut s, &mut rng);
        let victim = out.victim.expect("a victim must be chosen");
        assert!(!s.role(victim).is_attacker(), "the victim stays innocent");
        let deg = s.overlay().degree(victim);
        assert_eq!(out.colluders.len(), (deg as f64 * 0.5).ceil() as usize);
        for c in &out.colluders {
            assert!(s.role(*c).is_attacker());
            assert!(s.overlay().contains_edge(*c, victim), "colluders neighbor the victim");
            assert_eq!(
                s.role(*c).report_behavior(),
                ReportBehavior::FrameVictim { victim, inflate: 40.0 }
            );
        }
    }

    #[test]
    fn frame_victim_is_deterministic_per_sim() {
        let a = {
            let mut s = sim(200, 5);
            CollusionPlan::frame(0.3, 40.0).apply(&mut s, &mut StdRng::seed_from_u64(1)).victim
        };
        let b = {
            let mut s = sim(200, 5);
            CollusionPlan::frame(0.6, 40.0).apply(&mut s, &mut StdRng::seed_from_u64(2)).victim
        };
        assert_eq!(a, b, "same topology, same victim, regardless of rng/fraction");
    }

    #[test]
    fn shield_cluster_is_adjacent_and_marked() {
        let mut s = sim(200, 7);
        let mut rng = StdRng::seed_from_u64(3);
        let out = CollusionPlan::shield(8, 0.02).apply(&mut s, &mut rng);
        assert_eq!(out.victim, None);
        assert_eq!(out.colluders.len(), 8);
        for c in &out.colluders {
            assert!(s.role(*c).is_attacker());
            assert_eq!(
                s.role(*c).report_behavior(),
                ReportBehavior::ShieldColluders { factor: 0.02 }
            );
        }
        // BFS growth: every non-seed colluder neighbors an earlier one.
        for (i, c) in out.colluders.iter().enumerate().skip(1) {
            assert!(
                out.colluders[..i].iter().any(|p| s.overlay().contains_edge(*p, *c)),
                "colluder {c:?} must attach to the cluster"
            );
        }
    }

    #[test]
    fn zero_sized_coalitions_are_noops() {
        let mut s = sim(60, 1);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(CollusionPlan::shield(0, 0.1).apply(&mut s, &mut rng).colluders.is_empty());
        let out = CollusionPlan::frame(0.0, 40.0).apply(&mut s, &mut rng);
        assert!(out.colluders.is_empty());
        assert!(s.attackers().is_empty());
    }
}
