//! Attack orchestration: which peers are compromised, and how they behave.

use crate::cheat::{CheatFactors, CheatStrategy};
use ddp_sim::{Defense, Simulation};
use ddp_topology::NodeId;
use rand::seq::index::sample;
use rand::Rng;

/// One attack scenario: `k` random peers become DDoS agents (§3.6: "k random
/// peers, where k is ranging from 1 to 200, are selected as DDoS compromised
/// peers and each of them keeps sending out attack queries at the maximum
/// rate they are capable of").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackPlan {
    /// Number of compromised peers.
    pub agents: usize,
    /// How agents answer Neighbor_Traffic requests.
    pub cheat: CheatStrategy,
    /// Distortion magnitudes for the lying strategies (the paper's §3.4
    /// values by default).
    pub factors: CheatFactors,
}

impl AttackPlan {
    /// A plan with `agents` honest-reporting agents (the paper's default:
    /// §3.4 concludes "we assume that peer j will not cheat").
    pub fn new(agents: usize) -> Self {
        AttackPlan { agents, cheat: CheatStrategy::Honest, factors: CheatFactors::default() }
    }

    /// Same plan with a different cheating strategy.
    pub fn with_cheat(self, cheat: CheatStrategy) -> Self {
        AttackPlan { cheat, ..self }
    }

    /// Same plan with different distortion factors.
    pub fn with_factors(self, factors: CheatFactors) -> Self {
        AttackPlan { factors, ..self }
    }

    /// Pick the compromised peers uniformly at random.
    pub fn select_agents<R: Rng + ?Sized>(&self, population: usize, rng: &mut R) -> Vec<NodeId> {
        let k = self.agents.min(population);
        sample(rng, population, k).into_iter().map(NodeId::from_index).collect()
    }

    /// Apply the plan to a simulation: selects agents and compromises them.
    /// Returns the agent ids (ground truth, for error accounting).
    pub fn apply<D: Defense, R: Rng + ?Sized>(
        &self,
        sim: &mut Simulation<D>,
        rng: &mut R,
    ) -> Vec<NodeId> {
        let agents = self.select_agents(sim.config().peers(), rng);
        let behavior = self.cheat.to_behavior_with(self.factors);
        for &a in &agents {
            sim.make_attacker(a, behavior);
        }
        agents
    }
}

impl ddp_snapshot::Snapshottable for AttackPlan {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.usize(self.agents);
        enc.put(&self.cheat);
        enc.put(&self.factors);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(AttackPlan { agents: dec.usize()?, cheat: dec.get()?, factors: dec.get()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddp_sim::{NoDefense, SimConfig};
    use ddp_topology::{TopologyConfig, TopologyModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn selection_is_distinct_and_in_range() {
        let plan = AttackPlan::new(50);
        let mut rng = StdRng::seed_from_u64(1);
        let agents = plan.select_agents(200, &mut rng);
        assert_eq!(agents.len(), 50);
        let mut ids: Vec<_> = agents.iter().map(|a| a.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 50, "agents must be distinct");
        assert!(ids.iter().all(|&i| i < 200));
    }

    #[test]
    fn selection_caps_at_population() {
        let plan = AttackPlan::new(500);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(plan.select_agents(10, &mut rng).len(), 10);
    }

    #[test]
    fn apply_compromises_the_selected_peers() {
        let cfg = SimConfig {
            topology: TopologyConfig { n: 100, model: TopologyModel::BarabasiAlbert { m: 3 } },
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(cfg, NoDefense, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let agents = AttackPlan::new(10).apply(&mut sim, &mut rng);
        assert_eq!(agents.len(), 10);
        for a in &agents {
            assert!(sim.role(*a).is_attacker());
        }
        assert_eq!(sim.attackers().len(), 10);
    }

    #[test]
    fn plan_descriptors_snapshot_roundtrip_exactly() {
        use ddp_snapshot::{Dec, Enc, Snapshottable};
        fn roundtrip<T: Snapshottable + PartialEq + std::fmt::Debug>(v: &T) {
            let mut enc = Enc::new();
            enc.put(v);
            let bytes = enc.into_bytes();
            let mut dec = Dec::new(&bytes);
            assert_eq!(&dec.get::<T>().unwrap(), v);
            dec.finish().unwrap();
        }
        for cheat in CheatStrategy::all() {
            roundtrip(
                &AttackPlan::new(37)
                    .with_cheat(cheat)
                    .with_factors(CheatFactors { inflate: 12.5, deflate: 0.125 }),
            );
        }
        roundtrip(&crate::WhitewashPlan::new(5, 3).with_quiet(2));
        roundtrip(&crate::CollusionPlan::shield(8, 0.02));
        roundtrip(&crate::CollusionPlan::frame(0.5, 40.0));
        roundtrip(&crate::CollusionOutcome {
            victim: Some(NodeId(9)),
            colluders: vec![NodeId(1), NodeId(4)],
        });
        roundtrip(&crate::CollusionOutcome { victim: None, colluders: Vec::new() });
    }

    #[test]
    fn zero_agent_plan_is_a_noop() {
        let cfg = SimConfig {
            topology: TopologyConfig { n: 50, model: TopologyModel::BarabasiAlbert { m: 3 } },
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(cfg, NoDefense, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let agents = AttackPlan::new(0).apply(&mut sim, &mut rng);
        assert!(agents.is_empty());
        assert!(sim.attackers().is_empty());
    }
}
