//! Degenerate-input behavior of the streaming estimators, pinned.
//!
//! Empty, single-sample, all-equal, and non-finite inputs are exactly the
//! shapes a short or broken simulation run produces (no responses, one
//! response, a constant series, a `0.0 / 0.0` rate). Each case has one
//! defensible answer; these tests pin it so a refactor cannot drift the
//! estimators silently.

use ddp_metrics::{Histogram, P2Quantile};

// ----- P² quantile ------------------------------------------------------

#[test]
fn quantile_empty_input_estimates_zero() {
    let est = P2Quantile::new(0.5);
    assert_eq!(est.count(), 0);
    assert_eq!(est.estimate(), 0.0);
}

#[test]
fn quantile_single_sample_is_exact_for_every_q() {
    for q in [0.01, 0.5, 0.95, 0.99] {
        let mut est = P2Quantile::new(q);
        est.record(7.25);
        assert_eq!(est.count(), 1);
        assert_eq!(est.estimate(), 7.25, "one sample is every quantile (q = {q})");
    }
}

#[test]
fn quantile_all_equal_samples_estimate_that_value() {
    // Both the exact (< 5 samples) and the marker-based (>= 5) regimes.
    for n in [2u64, 4, 5, 100] {
        let mut est = P2Quantile::new(0.9);
        for _ in 0..n {
            est.record(3.5);
        }
        assert_eq!(est.count(), n);
        assert_eq!(est.estimate(), 3.5, "constant stream of {n} samples");
    }
}

#[test]
fn quantile_rejects_non_finite_samples() {
    let mut est = P2Quantile::new(0.5);
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        est.record(bad);
    }
    assert_eq!(est.count(), 0, "non-finite samples must not count");
    assert_eq!(est.estimate(), 0.0);

    // A NaN in the middle of a real stream neither counts nor perturbs.
    let mut clean = P2Quantile::new(0.5);
    let mut dirty = P2Quantile::new(0.5);
    for i in 0..50 {
        let x = f64::from(i % 10);
        clean.record(x);
        dirty.record(x);
        dirty.record(f64::NAN);
    }
    assert_eq!(dirty.count(), clean.count());
    assert_eq!(dirty.estimate().to_bits(), clean.estimate().to_bits());
}

// ----- histogram --------------------------------------------------------

#[test]
fn histogram_empty_input_has_zero_mass_and_zero_quantiles() {
    let h = Histogram::new(1.0, 4);
    assert_eq!(h.total(), 0);
    assert_eq!(h.overflow(), 0);
    assert_eq!(h.quantile(0.0), 0.0);
    assert_eq!(h.quantile(1.0), 0.0);
}

#[test]
fn histogram_single_sample_owns_every_quantile() {
    let mut h = Histogram::new(2.0, 8);
    h.record(5.0); // bucket 2, upper edge 6.0
    assert_eq!(h.total(), 1);
    for q in [0.01, 0.5, 1.0] {
        assert_eq!(h.quantile(q), 6.0, "the only bucket's upper edge (q = {q})");
    }
}

#[test]
fn histogram_all_equal_samples_land_in_one_bucket() {
    let mut h = Histogram::new(1.0, 4);
    for _ in 0..100 {
        h.record(2.5);
    }
    assert_eq!(h.total(), 100);
    assert_eq!(h.bucket(2), 100);
    assert_eq!(h.overflow(), 0);
    assert_eq!(h.quantile(0.5), 3.0);
}

#[test]
fn histogram_rejects_non_finite_values() {
    let mut h = Histogram::new(1.0, 4);
    h.record(f64::NAN);
    h.record(f64::INFINITY);
    h.record(f64::NEG_INFINITY);
    assert_eq!(h.total(), 0, "non-finite values must not count");
    assert_eq!(h.bucket(0), 0, "NaN must not masquerade as zero");
    assert_eq!(h.overflow(), 0, "infinity must not masquerade as overflow");

    h.record(0.5);
    h.record(f64::NAN);
    assert_eq!(h.total(), 1);
    assert_eq!(h.bucket(0), 1);
}
