//! Golden-fixture pin for the `RunSummary` JSON schema.
//!
//! The workspace has no real serde, so `RunSummary::to_json` *is* the schema.
//! This test compares the rendered bytes of a fully-populated summary against
//! a committed fixture; any field rename, reorder, or format change fails.
//! To regenerate after an intentional schema change:
//!
//! ```text
//! DDP_BLESS=1 cargo test -p ddp-metrics --test golden_summary
//! ```

use ddp_metrics::{DetectionErrors, ResilienceSummary, RunSummary, VerdictSummary};

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/run_summary.golden.json")
}

/// A summary with every field non-default, so a dropped field can't hide.
fn populated_summary() -> RunSummary {
    let mut resilience = ResilienceSummary {
        reports_requested: 10,
        reports_fresh: 7,
        reports_stale_used: 1,
        reports_refused: 1,
        reports_assumed_zero: 1,
        report_retries: 3,
        lists_sent: 40,
        lists_lost: 4,
        lists_delayed: 2,
        lists_late_applied: 1,
        crash_restarts: 1,
        ..Default::default()
    };
    resilience.snapshot_age.record(0.0);
    resilience.snapshot_age.record(2.0);
    RunSummary {
        success_rate_mean: 0.875,
        success_rate_stable: 0.9,
        response_time_mean_secs: 1.5,
        response_p95_secs: 3.25,
        traffic_per_tick: 1024.0,
        control_per_tick: 36.5,
        drop_rate_mean: 0.0625,
        errors: DetectionErrors { false_negative: 2, false_positive: 1 },
        attackers_cut: 5,
        attackers_never_cut: 1,
        good_peers_cut: 2,
        resilience,
        verdicts: VerdictSummary {
            transitions: 12,
            cuts: 5,
            quarantines: 5,
            readmission_probes: 2,
            readmissions: 1,
            recuts: 1,
            wrongful_cuts: 2,
            wrongful_cut_ticks_total: 6,
            wrongful_cut_ticks_mean: 3.0,
            readmission_latency_mean_ticks: 4.5,
        },
        monitor_backend: None,
        ticks: 30,
    }
}

#[test]
fn run_summary_json_matches_golden_fixture() {
    let rendered = populated_summary().to_json();
    let path = fixture_path();
    if std::env::var_os("DDP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, format!("{rendered}\n")).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {} ({e}); run with DDP_BLESS=1", path.display())
    });
    assert_eq!(
        rendered,
        golden.trim_end(),
        "RunSummary::to_json drifted from the committed schema fixture"
    );
}

#[test]
fn run_summary_json_is_parseable_shape() {
    // Cheap structural sanity independent of the fixture: balanced braces,
    // all top-level keys present in declaration order.
    let s = populated_summary().to_json();
    assert!(s.starts_with('{') && s.ends_with('}'));
    assert_eq!(s.matches('{').count(), s.matches('}').count());
    let keys = [
        "\"schema\":",
        "\"success_rate_mean\":",
        "\"success_rate_stable\":",
        "\"response_time_mean_secs\":",
        "\"response_p95_secs\":",
        "\"traffic_per_tick\":",
        "\"control_per_tick\":",
        "\"drop_rate_mean\":",
        "\"errors\":",
        "\"attackers_cut\":",
        "\"attackers_never_cut\":",
        "\"good_peers_cut\":",
        "\"resilience\":",
        "\"verdicts\":",
        "\"ticks\":",
    ];
    let mut last = 0;
    for k in keys {
        let pos = s.find(k).unwrap_or_else(|| panic!("missing key {k}"));
        assert!(pos > last || last == 0, "key {k} out of order");
        last = pos;
    }
    // Default summary must serialize too (all-zero path, NaN-free).
    let d = RunSummary::default().to_json();
    assert!(d.contains("\"ticks\":0"));
}

#[test]
fn monitor_backend_is_omitted_when_none_and_attributable_when_some() {
    // None (the exact default) renders byte-identically to pre-field
    // summaries — neither JSON nor Debug may mention it, or the frozen
    // differential digests and this file's golden fixture would shift.
    let none = populated_summary();
    assert!(!none.to_json().contains("monitor_backend"));
    assert!(!format!("{none:?}").contains("monitor_backend"));

    let mut tagged = populated_summary();
    tagged.monitor_backend = Some("sketch(w=2^16,d=4,k=512)".into());
    let json = tagged.to_json();
    assert!(
        json.contains("\"monitor_backend\":\"sketch(w=2^16,d=4,k=512)\""),
        "sketch rows must be attributable: {json}"
    );
    // Field order contract: after verdicts, before ticks.
    let pos = json.find("\"monitor_backend\":").unwrap();
    assert!(pos > json.find("\"verdicts\":").unwrap());
    assert!(pos < json.find("\"ticks\":").unwrap());
    assert!(format!("{tagged:?}").contains("monitor_backend: \"sketch(w=2^16,d=4,k=512)\""));
}
