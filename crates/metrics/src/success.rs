//! Query success-rate accounting.
//!
//! §3.6: "If we use qw(t) to denote the total number of queries issued by all
//! the peers during the period from (t−1)th to t-th time unit, and use qs(t)
//! to denote the total number of queries for which one or more locations of
//! the desired data are found, the query success rate at any given time t is
//! S(t) = qs(t) / qw(t) · 100%."

use serde::{Deserialize, Serialize};

/// Per-tick success counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SuccessStats {
    /// `qw(t)`: queries issued by (good) peers this tick.
    pub issued: u64,
    /// `qs(t)`: queries that found at least one object location.
    pub succeeded: u64,
}

impl SuccessStats {
    /// Record one issued query.
    pub fn record_issued(&mut self, n: u64) {
        self.issued += n;
    }

    /// Record one successful query.
    pub fn record_success(&mut self) {
        self.succeeded += 1;
    }

    /// `S(t)` in [0, 1]; 1.0 when no queries were issued (no evidence of
    /// failure — keeps damage-rate division well-defined on idle ticks).
    pub fn rate(&self) -> f64 {
        if self.issued == 0 {
            1.0
        } else {
            self.succeeded as f64 / self.issued as f64
        }
    }

    /// Merge another tick's counters in.
    pub fn merge(&mut self, other: SuccessStats) {
        self.issued += other.issued;
        self.succeeded += other.succeeded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_fraction() {
        let s = SuccessStats { issued: 10, succeeded: 7 };
        assert!((s.rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn idle_tick_counts_as_full_success() {
        assert_eq!(SuccessStats::default().rate(), 1.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = SuccessStats { issued: 5, succeeded: 2 };
        a.merge(SuccessStats { issued: 5, succeeded: 3 });
        assert_eq!(a, SuccessStats { issued: 10, succeeded: 5 });
    }

    #[test]
    fn recording_increments() {
        let mut s = SuccessStats::default();
        s.record_issued(3);
        s.record_success();
        assert_eq!(s.issued, 3);
        assert_eq!(s.succeeded, 1);
    }
}
