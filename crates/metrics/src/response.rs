//! Response-time accounting.
//!
//! §3.6: "Response time is defined as the time period from when the query is
//! issued until when the source peer received a response result from the
//! first responder." Only successful queries have a response time.

use serde::{Deserialize, Serialize};

/// Streaming response-time statistics (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResponseStats {
    pub count: u64,
    pub sum_secs: f64,
    pub max_secs: f64,
}

impl ResponseStats {
    /// Record one successful query's response time.
    pub fn record(&mut self, secs: f64) {
        debug_assert!(secs >= 0.0);
        self.count += 1;
        self.sum_secs += secs;
        if secs > self.max_secs {
            self.max_secs = secs;
        }
    }

    /// Mean response time; 0 if nothing succeeded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_secs / self.count as f64
        }
    }

    /// Merge another accumulator in.
    pub fn merge(&mut self, o: ResponseStats) {
        self.count += o.count;
        self.sum_secs += o.sum_secs;
        self.max_secs = self.max_secs.max(o.max_secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_records() {
        let mut r = ResponseStats::default();
        r.record(1.0);
        r.record(3.0);
        assert_eq!(r.mean(), 2.0);
        assert_eq!(r.max_secs, 3.0);
    }

    #[test]
    fn empty_mean_is_zero() {
        assert_eq!(ResponseStats::default().mean(), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = ResponseStats::default();
        a.record(2.0);
        let mut b = ResponseStats::default();
        b.record(4.0);
        b.record(6.0);
        a.merge(b);
        assert_eq!(a.count, 3);
        assert_eq!(a.mean(), 4.0);
        assert_eq!(a.max_secs, 6.0);
    }
}
