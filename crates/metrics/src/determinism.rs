//! Determinism observability: per-tick state-hash series and thread-scaling
//! counters for the parallel tick engine.
//!
//! The parallel engine's contract is *byte identity*: a run at any worker
//! count must march through exactly the same engine states as the serial
//! run. [`HashSeries`] is the witness — one 64-bit FNV digest of the full
//! snapshot payload per tick — cheap enough to record on every differential
//! run and precise enough that the first diverging tick pinpoints where a
//! reduction-order bug bit. [`ParallelStats`] counts what the worker pool
//! actually did, so scaling experiments can report shard counts next to
//! wall-clock numbers.

use ddp_snapshot::fnv1a64;

/// A per-tick sequence of engine state hashes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HashSeries {
    hashes: Vec<u64>,
}

impl HashSeries {
    /// An empty series.
    pub fn new() -> Self {
        HashSeries::default()
    }

    /// Append the state hash observed at the end of one tick.
    pub fn record(&mut self, hash: u64) {
        self.hashes.push(hash);
    }

    /// Number of ticks recorded.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Whether nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// The recorded hashes, one per tick in tick order.
    pub fn as_slice(&self) -> &[u64] {
        &self.hashes
    }

    /// Index of the first tick where the two series disagree (including one
    /// series simply being shorter), or `None` when they match exactly.
    pub fn first_divergence(&self, other: &HashSeries) -> Option<usize> {
        let n = self.hashes.len().min(other.hashes.len());
        for i in 0..n {
            if self.hashes[i] != other.hashes[i] {
                return Some(i);
            }
        }
        if self.hashes.len() != other.hashes.len() {
            return Some(n);
        }
        None
    }

    /// One digest over the whole series — a compact fixture value for golden
    /// pinning an entire run's trajectory.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.hashes.len() * 8);
        for h in &self.hashes {
            bytes.extend_from_slice(&h.to_le_bytes());
        }
        fnv1a64(&bytes)
    }
}

/// What the parallel tick engine's worker pool actually did during a run.
/// Pure observability: never serialized into snapshots, never part of the
/// state hash — a 1-thread and an 8-thread run differ here by design.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Worker-pool width the engine was configured with.
    pub threads: usize,
    /// Ticks whose defense/accounting work ran through the sharded path.
    pub parallel_ticks: u64,
    /// Ticks that ran fully inline (threads <= 1, or work too small).
    pub serial_ticks: u64,
    /// Total partition-shards executed across all parallel ticks.
    pub shards_run: u64,
}

impl ParallelStats {
    /// Account one tick: `shards == 0` means the tick ran inline.
    pub fn record_tick(&mut self, shards: usize) {
        if shards == 0 {
            self.serial_ticks += 1;
        } else {
            self.parallel_ticks += 1;
            self.shards_run += shards as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_divergence_finds_earliest_mismatch() {
        let mut a = HashSeries::new();
        let mut b = HashSeries::new();
        for h in [1u64, 2, 3, 4] {
            a.record(h);
            b.record(h);
        }
        assert_eq!(a.first_divergence(&b), None);
        b.record(99);
        assert_eq!(a.first_divergence(&b), Some(4), "length mismatch diverges at the tail");
        let mut c = a.clone();
        c = HashSeries {
            hashes: {
                let mut v = c.as_slice().to_vec();
                v[1] = 7;
                v
            },
        };
        assert_eq!(a.first_divergence(&c), Some(1));
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = HashSeries::new();
        a.record(1);
        a.record(2);
        let mut b = HashSeries::new();
        b.record(2);
        b.record(1);
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), a.clone().digest());
    }

    #[test]
    fn parallel_stats_split_serial_from_sharded_ticks() {
        let mut s = ParallelStats { threads: 4, ..ParallelStats::default() };
        s.record_tick(0);
        s.record_tick(4);
        s.record_tick(4);
        assert_eq!(s.serial_ticks, 1);
        assert_eq!(s.parallel_ticks, 2);
        assert_eq!(s.shards_run, 8);
    }
}
