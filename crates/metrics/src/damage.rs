//! Damage rate.
//!
//! §3.7.2: "Damage rate, D(t), is given by D(t) = (S(t) − S'(t)) / S(t) ·
//! 100%, where S(t) denotes query success rate of the P2P system when there
//! does not exist any DDoS compromised peers, and S'(t) denotes the query
//! success rate when the system is under DDoS attack."

/// `D(t)` in [0, 1], clamped: an attacked system that somehow outperforms the
/// baseline (sampling noise) reports zero damage, and a zero-baseline tick
/// reports zero (no service to damage).
pub fn damage_rate(baseline_success: f64, attacked_success: f64) -> f64 {
    if baseline_success <= 0.0 {
        return 0.0;
    }
    ((baseline_success - attacked_success) / baseline_success).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_attack_no_damage() {
        assert_eq!(damage_rate(0.9, 0.9), 0.0);
    }

    #[test]
    fn total_outage_is_full_damage() {
        assert_eq!(damage_rate(0.9, 0.0), 1.0);
    }

    #[test]
    fn paper_example_89_7_percent_failures() {
        // §3.6: "up to 89.7% of queries could fail" — if baseline is ~1.0 and
        // attacked success is 10.3%, damage ≈ 0.897.
        let d = damage_rate(1.0, 0.103);
        assert!((d - 0.897).abs() < 1e-9);
    }

    #[test]
    fn better_than_baseline_clamps_to_zero() {
        assert_eq!(damage_rate(0.5, 0.6), 0.0);
    }

    #[test]
    fn zero_baseline_reports_zero() {
        assert_eq!(damage_rate(0.0, 0.0), 0.0);
    }
}
