//! Per-tick time series.

use serde::{Deserialize, Serialize};

/// A named series of per-tick values.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    pub name: String,
    pub values: Vec<f64>,
}

impl TimeSeries {
    /// New empty series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries { name: name.into(), values: Vec::new() }
    }

    /// Append one tick's value.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Number of ticks recorded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no ticks are recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean (0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Mean over the last `n` ticks (the "stabilized" value).
    pub fn tail_mean(&self, n: usize) -> f64 {
        let start = self.values.len().saturating_sub(n);
        let tail = &self.values[start..];
        if tail.is_empty() {
            0.0
        } else {
            tail.iter().sum::<f64>() / tail.len() as f64
        }
    }

    /// Maximum value (NaN-free input assumed; 0 for empty).
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max).max(0.0)
    }

    /// Minimum value (0 for empty).
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// First tick index where the predicate holds.
    pub fn first_index_where(&self, mut pred: impl FnMut(f64) -> bool) -> Option<usize> {
        self.values.iter().position(|&v| pred(v))
    }
}

impl ddp_snapshot::Snapshottable for TimeSeries {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.put(&self.name);
        enc.put(&self.values);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(TimeSeries { name: dec.get()?, values: dec.get()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(vals: &[f64]) -> TimeSeries {
        TimeSeries { name: "t".into(), values: vals.to_vec() }
    }

    #[test]
    fn mean_and_extremes() {
        let s = ts(&[1.0, 2.0, 3.0, 6.0]);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.max(), 6.0);
        assert_eq!(s.min(), 1.0);
    }

    #[test]
    fn empty_series_is_zeroish() {
        let s = TimeSeries::new("empty");
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn tail_mean_uses_last_n() {
        let s = ts(&[10.0, 10.0, 1.0, 3.0]);
        assert_eq!(s.tail_mean(2), 2.0);
        assert_eq!(s.tail_mean(100), 6.0);
        assert_eq!(s.tail_mean(0), 0.0);
    }

    #[test]
    fn first_index_where_finds_crossing() {
        let s = ts(&[0.1, 0.15, 0.25, 0.2]);
        assert_eq!(s.first_index_where(|v| v >= 0.2), Some(2));
        assert_eq!(s.first_index_where(|v| v >= 0.9), None);
    }
}
