//! Control-plane resilience accounting.
//!
//! When the simulation injects faults into DD-POLICE's control plane (lost or
//! delayed `Neighbor_Traffic` reports and neighbor-list announcements,
//! crash-restarted peers), these counters record how the protocol actually
//! experienced the faulty transport: how many reports never arrived and were
//! assumed zero (§3.4's rule), how often a late report was still usable, and
//! how stale the membership snapshots driving Buddy-Group assembly were.

use crate::Histogram;
use serde::{Deserialize, Serialize};

/// Snapshot-age histogram shape: 1-tick buckets up to this many ticks, then
/// overflow. Ages beyond this are all "very stale" for every exchange period
/// the experiments sweep.
const AGE_BUCKETS: usize = 16;

/// Fault-plane and assume-zero accounting for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceSummary {
    /// Neighbor_Traffic report lookups the defense attempted (one per Buddy
    /// Group member per judgment, the observer's own counters excluded).
    pub reports_requested: u64,
    /// Lookups answered by a report that arrived within the same tick.
    pub reports_fresh: u64,
    /// Lookups answered by a delayed report that matured within the timeout.
    pub reports_stale_used: u64,
    /// Lookups where the member refused (offline, disconnected, or silent).
    pub reports_refused: u64,
    /// Lookups resolved by the assume-zero rule after retries and the stale
    /// mailbox both came up empty.
    pub reports_assumed_zero: u64,
    /// Re-requests issued after a transport fault (bounded per suspect/tick).
    pub report_retries: u64,
    /// Neighbor-list announcements sent (per announcer-receiver pair).
    pub lists_sent: u64,
    /// Announcements the transport dropped.
    pub lists_lost: u64,
    /// Announcements the transport delivered late.
    pub lists_delayed: u64,
    /// Late announcements that were still applied on maturity.
    pub lists_late_applied: u64,
    /// Crash-restart events (a peer's police/exchange state wiped mid-run).
    pub crash_restarts: u64,
    /// Age (ticks) of the membership snapshot behind each Buddy-Group
    /// judgment: 0 = refreshed this tick.
    pub snapshot_age: Histogram,
}

impl Default for ResilienceSummary {
    fn default() -> Self {
        ResilienceSummary {
            reports_requested: 0,
            reports_fresh: 0,
            reports_stale_used: 0,
            reports_refused: 0,
            reports_assumed_zero: 0,
            report_retries: 0,
            lists_sent: 0,
            lists_lost: 0,
            lists_delayed: 0,
            lists_late_applied: 0,
            crash_restarts: 0,
            snapshot_age: Histogram::new(1.0, AGE_BUCKETS),
        }
    }
}

impl ResilienceSummary {
    /// Fraction of report lookups that ended in assume-zero *because of the
    /// transport* (refusals excluded: a silent peer assumes zero even on a
    /// perfect network).
    pub fn missed_report_rate(&self) -> f64 {
        let answerable = self.reports_requested.saturating_sub(self.reports_refused);
        if answerable == 0 {
            return 0.0;
        }
        self.reports_assumed_zero as f64 / answerable as f64
    }

    /// Fraction of sent neighbor-list announcements the transport dropped.
    pub fn list_loss_rate(&self) -> f64 {
        if self.lists_sent == 0 {
            return 0.0;
        }
        self.lists_lost as f64 / self.lists_sent as f64
    }

    /// Mean snapshot age (ticks) over all judgments, overflow counted at the
    /// histogram's upper edge.
    pub fn mean_snapshot_age(&self) -> f64 {
        let total = self.snapshot_age.total();
        if total == 0 {
            return 0.0;
        }
        let mut weighted = 0.0;
        for b in 0..AGE_BUCKETS {
            weighted += self.snapshot_age.bucket(b) as f64 * b as f64;
        }
        weighted += self.snapshot_age.overflow() as f64 * AGE_BUCKETS as f64;
        weighted / total as f64
    }
}

impl ddp_snapshot::Snapshottable for ResilienceSummary {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        for v in [
            self.reports_requested,
            self.reports_fresh,
            self.reports_stale_used,
            self.reports_refused,
            self.reports_assumed_zero,
            self.report_retries,
            self.lists_sent,
            self.lists_lost,
            self.lists_delayed,
            self.lists_late_applied,
            self.crash_restarts,
        ] {
            enc.u64(v);
        }
        enc.put(&self.snapshot_age);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(ResilienceSummary {
            reports_requested: dec.u64()?,
            reports_fresh: dec.u64()?,
            reports_stale_used: dec.u64()?,
            reports_refused: dec.u64()?,
            reports_assumed_zero: dec.u64()?,
            report_retries: dec.u64()?,
            lists_sent: dec.u64()?,
            lists_lost: dec.u64()?,
            lists_delayed: dec.u64()?,
            lists_late_applied: dec.u64()?,
            crash_restarts: dec.u64()?,
            snapshot_age: dec.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missed_rate_excludes_refusals() {
        let r = ResilienceSummary {
            reports_requested: 10,
            reports_refused: 2,
            reports_assumed_zero: 4,
            ..Default::default()
        };
        assert!((r.missed_report_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_has_zero_rates() {
        let r = ResilienceSummary::default();
        assert_eq!(r.missed_report_rate(), 0.0);
        assert_eq!(r.list_loss_rate(), 0.0);
        assert_eq!(r.mean_snapshot_age(), 0.0);
    }

    #[test]
    fn mean_snapshot_age_weights_buckets() {
        let mut r = ResilienceSummary::default();
        r.snapshot_age.record(0.0);
        r.snapshot_age.record(2.0);
        assert!((r.mean_snapshot_age() - 1.0).abs() < 1e-12);
    }
}
