//! Traffic-cost accounting.
//!
//! §3.6: "traffic cost is a function of consumed network bandwidth and other
//! related expenses". We count message transmissions (message-hops) per tick,
//! split into search traffic, defense control traffic, and drops — enough to
//! reproduce the relative shapes of Figure 9 (attack multiplies traffic;
//! DD-POLICE restores it at a small control-overhead premium).

use serde::{Deserialize, Serialize};

/// Message-hop counters for one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrafficAccumulator {
    /// Query transmissions over overlay links.
    pub query_hops: u64,
    /// Query-hit transmissions (reverse-path routing).
    pub hit_hops: u64,
    /// Defense control messages (neighbor lists, Neighbor_Traffic, pings).
    pub control_msgs: u64,
    /// Queries dropped at saturated peers or links.
    pub dropped: u64,
}

impl TrafficAccumulator {
    /// Total transmissions this tick (the Figure 9 quantity).
    pub fn total(&self) -> u64 {
        self.query_hops + self.hit_hops + self.control_msgs
    }

    /// Drop fraction relative to attempted query transmissions.
    pub fn drop_rate(&self) -> f64 {
        let attempted = self.query_hops + self.dropped;
        if attempted == 0 {
            0.0
        } else {
            self.dropped as f64 / attempted as f64
        }
    }

    /// Merge another accumulator in.
    pub fn merge(&mut self, o: TrafficAccumulator) {
        self.query_hops += o.query_hops;
        self.hit_hops += o.hit_hops;
        self.control_msgs += o.control_msgs;
        self.dropped += o.dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_excludes_drops() {
        let t = TrafficAccumulator { query_hops: 10, hit_hops: 5, control_msgs: 2, dropped: 100 };
        assert_eq!(t.total(), 17);
    }

    #[test]
    fn drop_rate_is_fraction_of_attempts() {
        let t = TrafficAccumulator { query_hops: 53, dropped: 47, ..Default::default() };
        assert!((t.drop_rate() - 0.47).abs() < 1e-12);
    }

    #[test]
    fn drop_rate_idle_is_zero() {
        assert_eq!(TrafficAccumulator::default().drop_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = TrafficAccumulator { query_hops: 1, hit_hops: 2, control_msgs: 3, dropped: 4 };
        a.merge(TrafficAccumulator { query_hops: 10, hit_hops: 20, control_msgs: 30, dropped: 40 });
        assert_eq!(a.query_hops, 11);
        assert_eq!(a.hit_hops, 22);
        assert_eq!(a.control_msgs, 33);
        assert_eq!(a.dropped, 44);
    }
}
