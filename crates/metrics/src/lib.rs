//! Evaluation metrics for the DD-POLICE reproduction.
//!
//! The paper's evaluation (§3.6–§3.7) reports:
//!
//! * **traffic cost** — "a function of consumed network bandwidth and other
//!   related expenses"; we count message-hops per tick ([`traffic`]).
//! * **response time** — time from query issue to the first response
//!   ([`response`]).
//! * **query success rate** — `S(t) = qs(t) / qw(t)` ([`success`]).
//! * **damage rate** — `D(t) = (S(t) − S'(t)) / S(t)` where `S` is the
//!   no-attack success rate and `S'` the under-attack one ([`damage`]).
//! * **detection errors** — the paper's (inverted, we keep its naming)
//!   *false negative* = good peers wrongly disconnected, *false positive* =
//!   bad peers not identified, *false judgment* = their sum ([`errors`]).
//! * **damage recovery time** — ticks from `D(t) ≥ 20%` until `D(t) ≤ 15%`
//!   ([`recovery`]).

pub mod alloc;
pub mod conn;
pub mod damage;
pub mod determinism;
pub mod errors;
pub mod histogram;
pub mod jsonio;
pub mod quantile;
pub mod recovery;
pub mod resilience;
pub mod response;
pub mod success;
pub mod summary;
pub mod timeseries;
pub mod traffic;
pub mod verdict;

pub use alloc::CountingAlloc;
pub use conn::ConnCounters;
pub use damage::damage_rate;
pub use determinism::{HashSeries, ParallelStats};
pub use errors::DetectionErrors;
pub use histogram::Histogram;
pub use jsonio::{json_array, json_escape, json_f64, JsonObj};
pub use quantile::P2Quantile;
pub use recovery::{recovery_time, RecoveryThresholds};
pub use resilience::ResilienceSummary;
pub use response::ResponseStats;
pub use success::SuccessStats;
pub use summary::RunSummary;
pub use timeseries::TimeSeries;
pub use traffic::TrafficAccumulator;
pub use verdict::{PeerVerdict, VerdictLedger, VerdictSummary, VerdictTransition};
