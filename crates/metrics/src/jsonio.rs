//! Minimal hand-rolled JSON emission.
//!
//! The workspace's `serde` shim is deliberately inert (no `serde_json`), so
//! every machine-readable artifact (`BENCH_scale.json`, run-summary dumps) is
//! written by hand with a **stable field order**. Golden-fixture tests pin the
//! exact bytes, which is the schema contract: any accidental drift fails CI.

/// Render a finite `f64` with shortest round-trip precision; non-finite values
/// (which JSON cannot represent) collapse to `0`.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v:?}");
        // `{:?}` on f64 always includes a `.` or exponent, so the output is a
        // valid JSON number as-is.
        s
    } else {
        "0".to_string()
    }
}

/// Escape a string for a JSON string literal (quotes not included).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental compact JSON object writer. Fields appear in insertion order,
/// which is what makes the output byte-stable.
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
    any: bool,
}

impl JsonObj {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObj { buf: String::from("{"), any: false }
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        self.buf.push_str(&json_escape(k));
        self.buf.push_str("\":");
    }

    /// Add a float field.
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        self.buf.push_str(&json_f64(v));
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&json_escape(v));
        self.buf.push('"');
        self
    }

    /// Add a pre-rendered JSON value (object, array, ...) verbatim.
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Close the object and return the rendered string.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Render a sequence of pre-rendered JSON values as a compact array.
pub fn json_array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_roundtrip_compactly() {
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
    }

    #[test]
    fn object_fields_keep_insertion_order() {
        let s = JsonObj::new().str("a", "x\"y").u64("b", 7).f64("c", 1.25).finish();
        assert_eq!(s, r#"{"a":"x\"y","b":7,"c":1.25}"#);
    }

    #[test]
    fn arrays_and_nesting() {
        let inner = JsonObj::new().u64("n", 1).finish();
        let s = JsonObj::new().raw("cells", &json_array([inner])).finish();
        assert_eq!(s, r#"{"cells":[{"n":1}]}"#);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObj::new().finish(), "{}");
        assert_eq!(json_array([]), "[]");
    }

    #[test]
    fn control_chars_escape() {
        assert_eq!(json_escape("a\nb\u{1}"), "a\\nb\\u0001");
    }
}
