//! Damage recovery time.
//!
//! §3.7.2: "Damage recovery time is defined as the time period from when the
//! system damage rate D(t) is equal or greater than 20% until when the damage
//! is equal or less than 15%."

use crate::timeseries::TimeSeries;

/// Thresholds defining a recovery episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryThresholds {
    /// Damage level that starts the clock.
    pub trigger: f64,
    /// Damage level that stops it.
    pub target: f64,
}

impl Default for RecoveryThresholds {
    fn default() -> Self {
        RecoveryThresholds { trigger: 0.20, target: 0.15 }
    }
}

/// Ticks from the first `D(t) >= trigger` until the first subsequent
/// `D(t) <= target`. `None` if damage never triggers, or never recovers
/// within the series.
pub fn recovery_time(damage: &TimeSeries, th: RecoveryThresholds) -> Option<usize> {
    let start = damage.first_index_where(|d| d >= th.trigger)?;
    let rel_end = damage.values[start..].iter().position(|&d| d <= th.target)?;
    Some(rel_end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(vals: &[f64]) -> TimeSeries {
        TimeSeries { name: "damage".into(), values: vals.to_vec() }
    }

    #[test]
    fn simple_recovery_episode() {
        // triggers at index 1 (0.5), recovers at index 4 (0.10) -> 3 ticks.
        let d = ts(&[0.05, 0.5, 0.4, 0.3, 0.10, 0.05]);
        assert_eq!(recovery_time(&d, RecoveryThresholds::default()), Some(3));
    }

    #[test]
    fn never_triggered_is_none() {
        let d = ts(&[0.05, 0.1, 0.12]);
        assert_eq!(recovery_time(&d, RecoveryThresholds::default()), None);
    }

    #[test]
    fn never_recovered_is_none() {
        let d = ts(&[0.5, 0.45, 0.4]);
        assert_eq!(recovery_time(&d, RecoveryThresholds::default()), None);
    }

    #[test]
    fn instant_recovery_is_zero() {
        // A single tick at the trigger that is also below target is
        // impossible with default thresholds; use custom ones.
        let d = ts(&[0.2, 0.1]);
        let th = RecoveryThresholds { trigger: 0.2, target: 0.25 };
        assert_eq!(recovery_time(&d, th), Some(0));
    }

    #[test]
    fn uses_first_trigger_episode() {
        let d = ts(&[0.3, 0.1, 0.4, 0.35, 0.1]);
        // Clock starts at index 0; first value <= 0.15 is index 1 -> 1 tick.
        assert_eq!(recovery_time(&d, RecoveryThresholds::default()), Some(1));
    }
}
