//! Whole-run summary, the unit the experiment harness tabulates.

use crate::jsonio::JsonObj;
use crate::{DetectionErrors, ResilienceSummary, TimeSeries, VerdictSummary};
use serde::{Deserialize, Serialize};

/// Aggregated results of one simulation run.
///
/// `Debug` is hand-written (not derived) so the default `monitor_backend:
/// None` renders *nothing*: the frozen differential digests hash
/// `format!("{result:?}")`, and exact-backend runs must keep producing the
/// exact bytes they produced before the field existed.
#[derive(Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunSummary {
    /// Mean `S(t)` over the run (fraction, 0..=1).
    pub success_rate_mean: f64,
    /// `S(t)` over the last quarter of the run (stabilized value).
    pub success_rate_stable: f64,
    /// Mean response time of successful queries, seconds.
    pub response_time_mean_secs: f64,
    /// 95th-percentile response time of successful queries, seconds
    /// (streaming P² estimate; 0 when the producer does not track it).
    pub response_p95_secs: f64,
    /// Mean total message transmissions per tick.
    pub traffic_per_tick: f64,
    /// Mean defense control messages per tick.
    pub control_per_tick: f64,
    /// Mean drop fraction.
    pub drop_rate_mean: f64,
    /// Detection errors accumulated over the run.
    pub errors: DetectionErrors,
    /// Number of attacker disconnection events.
    pub attackers_cut: u64,
    /// Attackers that were never disconnected even once during the run.
    pub attackers_never_cut: u64,
    /// Number of good-peer disconnection events (defense mistakes).
    pub good_peers_cut: u64,
    /// Control-plane fault / assume-zero accounting (all zeros outside the
    /// fault-injected runs; populated by the engine's fault plane).
    pub resilience: ResilienceSummary,
    /// Verdict-lifecycle accounting (all zeros for defenses that never
    /// transition anyone; populated by the engine's verdict ledger).
    pub verdicts: VerdictSummary,
    /// Traffic-monitor backend label (e.g. `"sketch(w=2^16,d=4,k=512)"`),
    /// stamped by the engine from the defense so BENCH rows and summaries
    /// are attributable per backend. `None` means the exact default and is
    /// omitted from both `Debug` and JSON renderings — byte-compatible with
    /// summaries written before the field existed.
    pub monitor_backend: Option<String>,
    /// Ticks simulated.
    pub ticks: usize,
}

impl std::fmt::Debug for RunSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("RunSummary");
        d.field("success_rate_mean", &self.success_rate_mean)
            .field("success_rate_stable", &self.success_rate_stable)
            .field("response_time_mean_secs", &self.response_time_mean_secs)
            .field("response_p95_secs", &self.response_p95_secs)
            .field("traffic_per_tick", &self.traffic_per_tick)
            .field("control_per_tick", &self.control_per_tick)
            .field("drop_rate_mean", &self.drop_rate_mean)
            .field("errors", &self.errors)
            .field("attackers_cut", &self.attackers_cut)
            .field("attackers_never_cut", &self.attackers_never_cut)
            .field("good_peers_cut", &self.good_peers_cut)
            .field("resilience", &self.resilience)
            .field("verdicts", &self.verdicts);
        if let Some(backend) = &self.monitor_backend {
            d.field("monitor_backend", backend);
        }
        d.field("ticks", &self.ticks).finish()
    }
}

impl RunSummary {
    /// Compact JSON rendering with a fixed field order (the schema contract;
    /// pinned byte-for-byte by a golden-fixture test). The `serde` shim in
    /// this workspace is inert, so this is the canonical serialization.
    pub fn to_json(&self) -> String {
        let errors = JsonObj::new()
            .u64("false_negative", self.errors.false_negative)
            .u64("false_positive", self.errors.false_positive)
            .finish();
        let r = &self.resilience;
        let resilience = JsonObj::new()
            .u64("reports_requested", r.reports_requested)
            .u64("reports_fresh", r.reports_fresh)
            .u64("reports_stale_used", r.reports_stale_used)
            .u64("reports_refused", r.reports_refused)
            .u64("reports_assumed_zero", r.reports_assumed_zero)
            .u64("report_retries", r.report_retries)
            .u64("lists_sent", r.lists_sent)
            .u64("lists_lost", r.lists_lost)
            .u64("lists_delayed", r.lists_delayed)
            .u64("lists_late_applied", r.lists_late_applied)
            .u64("crash_restarts", r.crash_restarts)
            .f64("snapshot_age_mean", r.mean_snapshot_age())
            .finish();
        let v = &self.verdicts;
        let verdicts = JsonObj::new()
            .u64("transitions", v.transitions)
            .u64("cuts", v.cuts)
            .u64("quarantines", v.quarantines)
            .u64("readmission_probes", v.readmission_probes)
            .u64("readmissions", v.readmissions)
            .u64("recuts", v.recuts)
            .u64("wrongful_cuts", v.wrongful_cuts)
            .u64("wrongful_cut_ticks_total", v.wrongful_cut_ticks_total)
            .f64("wrongful_cut_ticks_mean", v.wrongful_cut_ticks_mean)
            .f64("readmission_latency_mean_ticks", v.readmission_latency_mean_ticks)
            .finish();
        let mut obj = JsonObj::new()
            .str("schema", "ddp-run-summary/v1")
            .f64("success_rate_mean", self.success_rate_mean)
            .f64("success_rate_stable", self.success_rate_stable)
            .f64("response_time_mean_secs", self.response_time_mean_secs)
            .f64("response_p95_secs", self.response_p95_secs)
            .f64("traffic_per_tick", self.traffic_per_tick)
            .f64("control_per_tick", self.control_per_tick)
            .f64("drop_rate_mean", self.drop_rate_mean)
            .raw("errors", &errors)
            .u64("attackers_cut", self.attackers_cut)
            .u64("attackers_never_cut", self.attackers_never_cut)
            .u64("good_peers_cut", self.good_peers_cut)
            .raw("resilience", &resilience)
            .raw("verdicts", &verdicts);
        // Omitted (not null) for the exact default: the v1 schema bytes are
        // pinned by a golden fixture and must stay reproducible.
        if let Some(backend) = &self.monitor_backend {
            obj = obj.str("monitor_backend", backend);
        }
        obj.u64("ticks", self.ticks as u64).finish()
    }
}

/// The per-tick series of one run, for time-resolved figures (Figure 12).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunSeries {
    pub success_rate: TimeSeries,
    pub response_time: TimeSeries,
    pub traffic: TimeSeries,
    pub control_traffic: TimeSeries,
    pub drop_rate: TimeSeries,
}

impl RunSeries {
    /// Create empty, named series.
    pub fn new() -> Self {
        RunSeries {
            success_rate: TimeSeries::new("success_rate"),
            response_time: TimeSeries::new("response_time_secs"),
            traffic: TimeSeries::new("traffic_msgs"),
            control_traffic: TimeSeries::new("control_msgs"),
            drop_rate: TimeSeries::new("drop_rate"),
        }
    }

    /// Ticks recorded.
    pub fn len(&self) -> usize {
        self.success_rate.len()
    }

    /// Whether nothing is recorded yet.
    pub fn is_empty(&self) -> bool {
        self.success_rate.is_empty()
    }

    /// Summarize the series (errors and cut counts supplied by the engine).
    pub fn summarize(
        &self,
        errors: DetectionErrors,
        attackers_cut: u64,
        good_peers_cut: u64,
    ) -> RunSummary {
        let ticks = self.len();
        let stable_window = (ticks / 4).max(1);
        RunSummary {
            success_rate_mean: self.success_rate.mean(),
            success_rate_stable: self.success_rate.tail_mean(stable_window),
            response_time_mean_secs: self.response_time.mean(),
            response_p95_secs: 0.0,
            traffic_per_tick: self.traffic.mean(),
            control_per_tick: self.control_traffic.mean(),
            drop_rate_mean: self.drop_rate.mean(),
            errors,
            attackers_cut,
            attackers_never_cut: 0,
            good_peers_cut,
            resilience: ResilienceSummary::default(),
            verdicts: VerdictSummary::default(),
            monitor_backend: None,
            ticks,
        }
    }
}

impl ddp_snapshot::Snapshottable for RunSeries {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.put(&self.success_rate);
        enc.put(&self.response_time);
        enc.put(&self.traffic);
        enc.put(&self.control_traffic);
        enc.put(&self.drop_rate);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(RunSeries {
            success_rate: dec.get()?,
            response_time: dec.get()?,
            traffic: dec.get()?,
            control_traffic: dec.get()?,
            drop_rate: dec.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_uses_tail_for_stable_rate() {
        let mut s = RunSeries::new();
        for v in [0.2, 0.2, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9] {
            s.success_rate.push(v);
            s.response_time.push(1.0);
            s.traffic.push(100.0);
            s.control_traffic.push(5.0);
            s.drop_rate.push(0.0);
        }
        let sum = s.summarize(DetectionErrors::default(), 2, 1);
        assert!(sum.success_rate_stable > sum.success_rate_mean);
        assert_eq!(sum.attackers_cut, 2);
        assert_eq!(sum.good_peers_cut, 1);
        assert_eq!(sum.ticks, 8);
    }

    #[test]
    fn empty_series_summary_is_default_like() {
        let s = RunSeries::new();
        let sum = s.summarize(DetectionErrors::default(), 0, 0);
        assert_eq!(sum.ticks, 0);
        assert_eq!(sum.success_rate_mean, 0.0);
    }
}

/// Mean and a 95% confidence half-width over replicate samples (normal
/// approximation; for the small replicate counts experiments use, treat the
/// interval as indicative, not exact).
pub fn mean_ci95(samples: &[f64]) -> (f64, f64) {
    let n = samples.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
    let half = 1.96 * (var / n as f64).sqrt();
    (mean, half)
}

#[cfg(test)]
mod ci_tests {
    use super::mean_ci95;

    #[test]
    fn empty_and_singleton() {
        assert_eq!(mean_ci95(&[]), (0.0, 0.0));
        assert_eq!(mean_ci95(&[3.5]), (3.5, 0.0));
    }

    #[test]
    fn constant_samples_have_zero_width() {
        let (m, h) = mean_ci95(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(m, 2.0);
        assert_eq!(h, 0.0);
    }

    #[test]
    fn spread_widens_the_interval() {
        let (_, tight) = mean_ci95(&[10.0, 10.1, 9.9, 10.0]);
        let (_, wide) = mean_ci95(&[5.0, 15.0, 2.0, 18.0]);
        assert!(wide > tight);
    }
}
