//! Verdict ledger: the audit trail of the suspicion state machine.
//!
//! PR 2 replaces DD-POLICE's single-shot permanent cut with a per-suspect
//! lifecycle (`Normal → Suspicious → Cut → Quarantined → Probation →
//! Readmitted`). Every state change an observer decides is recorded as a
//! [`VerdictTransition`]; the engine collects them into a [`VerdictLedger`]
//! and the run summary carries the aggregated [`VerdictSummary`] so
//! experiments can report wrongful-cut duration, readmission latency, and
//! re-cut counts alongside the paper's detection errors.
//!
//! The types here are deliberately dependency-light (raw `u32` peer ids, no
//! floats in [`VerdictTransition`]) so they can ride inside the simulator's
//! `Actions` value, which is `Eq`.

use serde::{Deserialize, Serialize};

/// The lifecycle states a suspect can occupy from one observer's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeerVerdict {
    /// No live suspicion (also the implicit state of untracked peers).
    Normal,
    /// Over the warning threshold with at least one over-`CT` window, but
    /// the W-of-K hysteresis has not confirmed a cut yet.
    Suspicious,
    /// The indicator evidence crossed the hysteresis bar this tick; the
    /// observer is severing the link. Transient: immediately followed by
    /// `Quarantined` in the same tick.
    Cut,
    /// Disconnected and waiting out an exponential readmission backoff.
    Quarantined,
    /// Reconnected on probation: one re-offense re-cuts without hysteresis.
    Probation,
    /// Survived probation; suspicion state is dropped. Terminal (a later
    /// offense starts a fresh lifecycle from `Normal`).
    Readmitted,
}

/// One observer-side state change of one suspect, at one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictTransition {
    /// Tick the transition was decided.
    pub tick: u32,
    /// The observer (police node) holding the suspicion state.
    pub observer: u32,
    /// The peer being judged.
    pub suspect: u32,
    /// State before.
    pub from: PeerVerdict,
    /// State after.
    pub to: PeerVerdict,
}

/// Whole-run ledger of verdict transitions, in decision order.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VerdictLedger {
    /// Every transition, in the order observers decided them.
    pub log: Vec<VerdictTransition>,
}

impl VerdictLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        VerdictLedger::default()
    }

    /// Append one transition.
    pub fn record(&mut self, t: VerdictTransition) {
        self.log.push(t);
    }

    /// Transitions into `state`.
    pub fn count_into(&self, state: PeerVerdict) -> u64 {
        self.log.iter().filter(|t| t.to == state).count() as u64
    }

    /// Aggregate the ledger. `wrongful_cut_ticks` are the engine-measured
    /// durations (one entry per wrongful cut of a good peer, in ticks until
    /// the severed edge was restored, censored at run end if never restored).
    pub fn summarize(&self, wrongful_cut_ticks: &[u32]) -> VerdictSummary {
        use std::collections::HashMap;
        let mut quarantined_at: HashMap<(u32, u32), u32> = HashMap::new();
        let mut cuts = 0u64;
        let mut quarantines = 0u64;
        let mut probes = 0u64;
        let mut readmissions = 0u64;
        let mut recuts = 0u64;
        let mut latency_sum = 0u64;
        for t in &self.log {
            match t.to {
                PeerVerdict::Cut => {
                    cuts += 1;
                    if t.from == PeerVerdict::Probation {
                        recuts += 1;
                    }
                }
                PeerVerdict::Quarantined => {
                    quarantines += 1;
                    quarantined_at.insert((t.observer, t.suspect), t.tick);
                }
                PeerVerdict::Probation => probes += 1,
                PeerVerdict::Readmitted => {
                    readmissions += 1;
                    if let Some(start) = quarantined_at.remove(&(t.observer, t.suspect)) {
                        latency_sum += u64::from(t.tick.saturating_sub(start));
                    }
                }
                PeerVerdict::Normal | PeerVerdict::Suspicious => {}
            }
        }
        let wrongful_total: u64 = wrongful_cut_ticks.iter().map(|&d| u64::from(d)).sum();
        VerdictSummary {
            transitions: self.log.len() as u64,
            cuts,
            quarantines,
            readmission_probes: probes,
            readmissions,
            recuts,
            wrongful_cuts: wrongful_cut_ticks.len() as u64,
            wrongful_cut_ticks_total: wrongful_total,
            wrongful_cut_ticks_mean: if wrongful_cut_ticks.is_empty() {
                0.0
            } else {
                wrongful_total as f64 / wrongful_cut_ticks.len() as f64
            },
            readmission_latency_mean_ticks: if readmissions == 0 {
                0.0
            } else {
                latency_sum as f64 / readmissions as f64
            },
        }
    }
}

/// Aggregated verdict-lifecycle statistics for one run.
///
/// All zeros when the defense never transitions anyone (e.g. `NoDefense`)
/// or the run predates the verdict pipeline.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct VerdictSummary {
    /// Total ledger entries.
    pub transitions: u64,
    /// Transitions into `Cut` (equals the engine's requested-cut count).
    pub cuts: u64,
    /// Transitions into `Quarantined`.
    pub quarantines: u64,
    /// Quarantine → Probation readmission probes issued.
    pub readmission_probes: u64,
    /// Probation periods survived (suspect fully readmitted).
    pub readmissions: u64,
    /// Probationary peers re-cut on a re-offense.
    pub recuts: u64,
    /// Wrongful cuts of good peers (one per severed good edge).
    pub wrongful_cuts: u64,
    /// Total ticks good peers spent wrongly severed (censored at run end).
    pub wrongful_cut_ticks_total: u64,
    /// Mean wrongful-cut duration in ticks (0 when there were none).
    pub wrongful_cut_ticks_mean: f64,
    /// Mean ticks from quarantine entry to full readmission (0 when no peer
    /// was readmitted).
    pub readmission_latency_mean_ticks: f64,
}

impl ddp_snapshot::Snapshottable for PeerVerdict {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.u8(match self {
            PeerVerdict::Normal => 0,
            PeerVerdict::Suspicious => 1,
            PeerVerdict::Cut => 2,
            PeerVerdict::Quarantined => 3,
            PeerVerdict::Probation => 4,
            PeerVerdict::Readmitted => 5,
        });
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(match dec.u8()? {
            0 => PeerVerdict::Normal,
            1 => PeerVerdict::Suspicious,
            2 => PeerVerdict::Cut,
            3 => PeerVerdict::Quarantined,
            4 => PeerVerdict::Probation,
            5 => PeerVerdict::Readmitted,
            _ => return Err(ddp_snapshot::SnapshotError::Corrupt { what: "PeerVerdict tag" }),
        })
    }
}

impl ddp_snapshot::Snapshottable for VerdictTransition {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.u32(self.tick);
        enc.u32(self.observer);
        enc.u32(self.suspect);
        enc.put(&self.from);
        enc.put(&self.to);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(VerdictTransition {
            tick: dec.u32()?,
            observer: dec.u32()?,
            suspect: dec.u32()?,
            from: dec.get()?,
            to: dec.get()?,
        })
    }
}

impl ddp_snapshot::Snapshottable for VerdictLedger {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.put(&self.log);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(VerdictLedger { log: dec.get()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(
        tick: u32,
        observer: u32,
        suspect: u32,
        from: PeerVerdict,
        to: PeerVerdict,
    ) -> VerdictTransition {
        VerdictTransition { tick, observer, suspect, from, to }
    }

    #[test]
    fn empty_ledger_summarizes_to_default() {
        let ledger = VerdictLedger::new();
        assert_eq!(ledger.summarize(&[]), VerdictSummary::default());
    }

    #[test]
    fn full_lifecycle_is_counted() {
        let mut ledger = VerdictLedger::new();
        ledger.record(t(3, 1, 2, PeerVerdict::Normal, PeerVerdict::Cut));
        ledger.record(t(3, 1, 2, PeerVerdict::Cut, PeerVerdict::Quarantined));
        ledger.record(t(7, 1, 2, PeerVerdict::Quarantined, PeerVerdict::Probation));
        ledger.record(t(12, 1, 2, PeerVerdict::Probation, PeerVerdict::Readmitted));
        let s = ledger.summarize(&[]);
        assert_eq!(s.transitions, 4);
        assert_eq!(s.cuts, 1);
        assert_eq!(s.quarantines, 1);
        assert_eq!(s.readmission_probes, 1);
        assert_eq!(s.readmissions, 1);
        assert_eq!(s.recuts, 0);
        // Quarantined at tick 3, readmitted at tick 12.
        assert_eq!(s.readmission_latency_mean_ticks, 9.0);
    }

    #[test]
    fn probation_recut_counts_as_recut_not_readmission() {
        let mut ledger = VerdictLedger::new();
        ledger.record(t(3, 0, 9, PeerVerdict::Normal, PeerVerdict::Cut));
        ledger.record(t(3, 0, 9, PeerVerdict::Cut, PeerVerdict::Quarantined));
        ledger.record(t(6, 0, 9, PeerVerdict::Quarantined, PeerVerdict::Probation));
        ledger.record(t(7, 0, 9, PeerVerdict::Probation, PeerVerdict::Cut));
        ledger.record(t(7, 0, 9, PeerVerdict::Cut, PeerVerdict::Quarantined));
        let s = ledger.summarize(&[]);
        assert_eq!(s.cuts, 2);
        assert_eq!(s.recuts, 1);
        assert_eq!(s.readmissions, 0);
        assert_eq!(s.readmission_latency_mean_ticks, 0.0);
    }

    #[test]
    fn wrongful_cut_durations_aggregate() {
        let ledger = VerdictLedger::new();
        let s = ledger.summarize(&[4, 6]);
        assert_eq!(s.wrongful_cuts, 2);
        assert_eq!(s.wrongful_cut_ticks_total, 10);
        assert_eq!(s.wrongful_cut_ticks_mean, 5.0);
    }

    #[test]
    fn count_into_filters_by_target_state() {
        let mut ledger = VerdictLedger::new();
        ledger.record(t(1, 0, 1, PeerVerdict::Normal, PeerVerdict::Suspicious));
        ledger.record(t(2, 0, 1, PeerVerdict::Suspicious, PeerVerdict::Cut));
        ledger.record(t(2, 0, 1, PeerVerdict::Cut, PeerVerdict::Quarantined));
        assert_eq!(ledger.count_into(PeerVerdict::Cut), 1);
        assert_eq!(ledger.count_into(PeerVerdict::Quarantined), 1);
        assert_eq!(ledger.count_into(PeerVerdict::Readmitted), 0);
    }
}
