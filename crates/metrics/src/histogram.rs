//! Fixed-width bucket histogram for diagnostics (degree distributions,
//! indicator values, response-time spreads).

use serde::{Deserialize, Serialize};

/// A histogram over `[0, bucket_width * buckets)` with an overflow bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create with `buckets` buckets of width `bucket_width`.
    pub fn new(bucket_width: f64, buckets: usize) -> Self {
        assert!(bucket_width > 0.0 && buckets > 0);
        Histogram { bucket_width, counts: vec![0; buckets], overflow: 0, total: 0 }
    }

    /// Record a value (negative values clamp into the first bucket;
    /// non-finite values are rejected without touching any count — a NaN
    /// would otherwise be silently binned at zero through `NaN.max(0.0)`).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.total += 1;
        let idx = (v.max(0.0) / self.bucket_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Count of values beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest value `x` such that at least `q` (0..=1) of the mass lies at
    /// or below `x`'s bucket upper edge. Returns the overflow edge when the
    /// quantile lands there.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return 0.0;
        }
        let want = (q * self.total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= want {
                return (i as f64 + 1.0) * self.bucket_width;
            }
        }
        self.counts.len() as f64 * self.bucket_width
    }
}

/// Snapshot support (fields are private, so the impl lives here). `load`
/// re-validates the invariants [`Histogram::new`] asserts, surfacing corrupt
/// bytes as typed errors instead of panics.
impl ddp_snapshot::Snapshottable for Histogram {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.f64(self.bucket_width);
        enc.put(&self.counts);
        enc.u64(self.overflow);
        enc.u64(self.total);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        let bucket_width = dec.f64()?;
        let counts: Vec<u64> = dec.get()?;
        if !(bucket_width > 0.0 && bucket_width.is_finite()) || counts.is_empty() {
            return Err(ddp_snapshot::SnapshotError::Corrupt { what: "Histogram shape" });
        }
        Ok(Histogram { bucket_width, counts, overflow: dec.u64()?, total: dec.u64()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_buckets() {
        let mut h = Histogram::new(1.0, 4);
        for v in [0.5, 1.5, 1.7, 3.9, 10.0] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(3), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn negative_values_clamp_to_first_bucket() {
        let mut h = Histogram::new(1.0, 2);
        h.record(-5.0);
        assert_eq!(h.bucket(0), 1);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(1.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0); // uniform over [0, 10)
        }
        assert!((h.quantile(0.5) - 5.0).abs() <= 1.0);
        assert!((h.quantile(1.0) - 10.0).abs() <= 1.0);
    }

    #[test]
    fn empty_quantile_is_zero() {
        let h = Histogram::new(1.0, 4);
        assert_eq!(h.quantile(0.9), 0.0);
    }
}
