//! Streaming quantile estimation (the P² algorithm).
//!
//! Jain & Chlamtac's P² estimator tracks a single quantile with five markers
//! in O(1) memory and O(1) per observation — the right tool for per-run
//! response-time percentiles, where storing every sample would dwarf the
//! simulation state. Exact for the first five observations, asymptotically
//! consistent afterwards.

use serde::{Deserialize, Serialize};

/// P² estimator for one quantile `q`.
///
/// ```
/// use ddp_metrics::P2Quantile;
///
/// let mut p95 = P2Quantile::new(0.95);
/// for i in 0..1_000 {
///     p95.record((i % 100) as f64);
/// }
/// let est = p95.estimate();
/// assert!((90.0..=99.0).contains(&est), "p95 of 0..100 cycle: {est}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates of the order statistics).
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// Estimator for quantile `q` in (0, 1).
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Observations seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feed one observation. Non-finite values are rejected without
    /// touching any state: a NaN would poison the marker ordering (every
    /// comparison below is false for NaN) and skew every later estimate.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count < 5 {
            self.heights[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;

        // Find the cell k with heights[k] <= x < heights[k+1]; clamp ends.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            (0..4).find(|&i| x < self.heights[i + 1]).unwrap_or(3)
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate (exact for <= 5 observations; 0 when empty).
    pub fn estimate(&self) -> f64 {
        match self.count {
            0 => 0.0,
            n if n < 5 => {
                let mut sorted = self.heights;
                let k = n as usize;
                sorted[..k].sort_by(f64::total_cmp);
                let rank = (self.q * (k - 1) as f64).round() as usize;
                sorted[rank.min(k - 1)]
            }
            _ => self.heights[2],
        }
    }
}

/// Snapshot support: P² is pure accumulated state — all five marker arrays
/// and the count serialize verbatim (bit-for-bit f64s) so a restored
/// estimator continues producing identical estimates. Fields are private, so
/// the impl lives here.
impl ddp_snapshot::Snapshottable for P2Quantile {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.f64(self.q);
        for arr in [&self.heights, &self.positions, &self.desired, &self.increments] {
            for &v in arr {
                enc.f64(v);
            }
        }
        enc.u64(self.count);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        fn arr5(dec: &mut ddp_snapshot::Dec<'_>) -> Result<[f64; 5], ddp_snapshot::SnapshotError> {
            let mut a = [0.0; 5];
            for v in &mut a {
                *v = dec.f64()?;
            }
            Ok(a)
        }
        let q = dec.f64()?;
        if !(q > 0.0 && q < 1.0) {
            return Err(ddp_snapshot::SnapshotError::Corrupt { what: "P2Quantile q" });
        }
        Ok(P2Quantile {
            q,
            heights: arr5(dec)?,
            positions: arr5(dec)?,
            desired: arr5(dec)?,
            increments: arr5(dec)?,
            count: dec.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(q: f64, data: impl Iterator<Item = f64>) -> f64 {
        let mut est = P2Quantile::new(q);
        for x in data {
            est.record(x);
        }
        est.estimate()
    }

    #[test]
    fn median_of_uniform_stream() {
        // 0..10000 scaled to [0, 1): true median 0.5.
        let est = feed(0.5, (0..10_000).map(|i| (i as f64 * 7919.0) % 10_000.0 / 10_000.0));
        assert!((est - 0.5).abs() < 0.02, "median estimate {est}");
    }

    #[test]
    fn p95_of_uniform_stream() {
        let est = feed(0.95, (0..10_000).map(|i| (i as f64 * 7919.0) % 10_000.0 / 10_000.0));
        assert!((est - 0.95).abs() < 0.02, "p95 estimate {est}");
    }

    #[test]
    fn exact_for_small_counts() {
        let mut est = P2Quantile::new(0.5);
        for x in [5.0, 1.0, 3.0] {
            est.record(x);
        }
        assert_eq!(est.estimate(), 3.0);
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn empty_estimator_reports_zero() {
        assert_eq!(P2Quantile::new(0.9).estimate(), 0.0);
    }

    #[test]
    fn skewed_distribution() {
        // Exponential-ish: p50 of exp(1) is ln 2 ≈ 0.693.
        let est = feed(
            0.5,
            (1..20_000).map(|i| {
                let u = i as f64 / 20_000.0;
                -(1.0 - u).ln()
            }),
        );
        assert!((est - 0.693).abs() < 0.05, "exp median {est}");
    }

    #[test]
    fn monotone_in_quantile() {
        let data: Vec<f64> =
            (0..5_000).map(|i| ((i as f64 * 104_729.0) % 5_000.0) / 50.0).collect();
        let p25 = feed(0.25, data.iter().copied());
        let p50 = feed(0.5, data.iter().copied());
        let p95 = feed(0.95, data.iter().copied());
        assert!(p25 < p50 && p50 < p95, "{p25} < {p50} < {p95}");
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn invalid_quantile_panics() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn snapshot_roundtrip_continues_identically() {
        use ddp_snapshot::{Dec, Enc, Snapshottable};
        let mut orig = P2Quantile::new(0.95);
        for i in 0..137 {
            orig.record((i as f64 * 31.7) % 100.0);
        }
        let mut enc = Enc::new();
        orig.save(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let mut restored = P2Quantile::load(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(restored, orig);
        for i in 0..50 {
            let x = (i as f64 * 13.3) % 100.0;
            orig.record(x);
            restored.record(x);
        }
        assert_eq!(restored.estimate().to_bits(), orig.estimate().to_bits());
    }
}
