//! Connection-lifecycle counters for the wire deployment.
//!
//! The socket runtime in `ddp-servent` supervises every TCP connection
//! (handshake deadlines, reconnect backoff, idle timeouts, bounded send
//! queues); this struct is the plain, serializable tally of what that
//! supervision observed over a run. It lives here so the multi-process
//! testbed can aggregate it next to the simulator's [`RunSummary`]
//! resilience counters without depending on the runtime itself.
//!
//! [`RunSummary`]: crate::summary::RunSummary

/// Per-servent connection and backpressure telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConnCounters {
    /// Outbound dials that completed the handshake.
    pub dials_ok: u64,
    /// Outbound dials that failed (connect refused/timed out, handshake
    /// deadline missed, bad hello).
    pub dials_failed: u64,
    /// Inbound connections that completed the handshake.
    pub accepts: u64,
    /// Inbound connections dropped before completing the handshake.
    pub handshake_failures: u64,
    /// Successful re-establishments of a previously live link.
    pub reconnects: u64,
    /// Connections closed because the peer sent nothing for the idle
    /// horizon (feeds the assume-zero path).
    pub idle_closes: u64,
    /// Connections closed because the peer sent malformed or oversized
    /// bytes (hostile input disconnects, never panics).
    pub codec_disconnects: u64,
    /// Frames written to a socket.
    pub frames_sent: u64,
    /// Bytes written to a socket.
    pub bytes_sent: u64,
    /// Frames fully reassembled and validated off a socket.
    pub frames_received: u64,
    /// Bytes read off sockets.
    pub bytes_received: u64,
    /// Frames evicted from a bounded send queue under backpressure
    /// (drop-oldest policy; the overlay's loss path, never OOM).
    pub frames_dropped: u64,
    /// Frames addressed to a peer with no known transport address.
    pub frames_unroutable: u64,
    /// Checkpoints the runtime wrote to disk (temp+fsync+rename).
    pub checkpoints_written: u64,
    /// Checkpoint writes that failed (disk full, permissions); the run
    /// continues — a failed checkpoint costs recovery freshness, not uptime.
    pub checkpoint_failures: u64,
    /// Successful resume-from-checkpoint cold-boot recoveries.
    pub resumes: u64,
}

impl ConnCounters {
    /// Element-wise sum — aggregate counters across servents.
    pub fn merge(&self, other: &ConnCounters) -> ConnCounters {
        ConnCounters {
            dials_ok: self.dials_ok + other.dials_ok,
            dials_failed: self.dials_failed + other.dials_failed,
            accepts: self.accepts + other.accepts,
            handshake_failures: self.handshake_failures + other.handshake_failures,
            reconnects: self.reconnects + other.reconnects,
            idle_closes: self.idle_closes + other.idle_closes,
            codec_disconnects: self.codec_disconnects + other.codec_disconnects,
            frames_sent: self.frames_sent + other.frames_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            frames_received: self.frames_received + other.frames_received,
            bytes_received: self.bytes_received + other.bytes_received,
            frames_dropped: self.frames_dropped + other.frames_dropped,
            frames_unroutable: self.frames_unroutable + other.frames_unroutable,
            checkpoints_written: self.checkpoints_written + other.checkpoints_written,
            checkpoint_failures: self.checkpoint_failures + other.checkpoint_failures,
            resumes: self.resumes + other.resumes,
        }
    }

    /// `(name, value)` pairs in a stable order — the serialization the
    /// testbed's summary files and tables use.
    pub fn fields(&self) -> [(&'static str, u64); 17] {
        [
            ("dials_ok", self.dials_ok),
            ("dials_failed", self.dials_failed),
            ("accepts", self.accepts),
            ("handshake_failures", self.handshake_failures),
            ("reconnects", self.reconnects),
            ("idle_closes", self.idle_closes),
            ("codec_disconnects", self.codec_disconnects),
            ("frames_sent", self.frames_sent),
            ("bytes_sent", self.bytes_sent),
            ("frames_received", self.frames_received),
            ("bytes_received", self.bytes_received),
            ("frames_dropped", self.frames_dropped),
            ("frames_unroutable", self.frames_unroutable),
            ("checkpoints_written", self.checkpoints_written),
            ("checkpoint_failures", self.checkpoint_failures),
            ("resumes", self.resumes),
            ("conn_end", 0),
        ]
    }

    /// Set the field with the given [`ConnCounters::fields`] name.
    /// Returns `false` for an unknown name (forward compatibility: parsers
    /// skip what they do not know).
    pub fn set_field(&mut self, name: &str, value: u64) -> bool {
        match name {
            "dials_ok" => self.dials_ok = value,
            "dials_failed" => self.dials_failed = value,
            "accepts" => self.accepts = value,
            "handshake_failures" => self.handshake_failures = value,
            "reconnects" => self.reconnects = value,
            "idle_closes" => self.idle_closes = value,
            "codec_disconnects" => self.codec_disconnects = value,
            "frames_sent" => self.frames_sent = value,
            "bytes_sent" => self.bytes_sent = value,
            "frames_received" => self.frames_received = value,
            "bytes_received" => self.bytes_received = value,
            "frames_dropped" => self.frames_dropped = value,
            "frames_unroutable" => self.frames_unroutable = value,
            "checkpoints_written" => self.checkpoints_written = value,
            "checkpoint_failures" => self.checkpoint_failures = value,
            "resumes" => self.resumes = value,
            "conn_end" => {}
            _ => return false,
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_elementwise_sum() {
        let a =
            ConnCounters { dials_ok: 1, frames_sent: 10, bytes_sent: 100, ..Default::default() };
        let b = ConnCounters { dials_ok: 2, frames_dropped: 5, ..Default::default() };
        let m = a.merge(&b);
        assert_eq!(m.dials_ok, 3);
        assert_eq!(m.frames_sent, 10);
        assert_eq!(m.bytes_sent, 100);
        assert_eq!(m.frames_dropped, 5);
    }

    #[test]
    fn fields_roundtrip_through_set_field() {
        let mut src = ConnCounters::default();
        // Give every field a distinct value via the accessor table itself.
        for (i, (name, _)) in ConnCounters::default().fields().iter().enumerate() {
            assert!(src.set_field(name, (i as u64 + 1) * 7), "unknown field {name}");
        }
        let mut back = ConnCounters::default();
        for (name, value) in src.fields() {
            assert!(back.set_field(name, value));
        }
        assert_eq!(src, back);
    }

    #[test]
    fn unknown_field_is_rejected_not_panicked() {
        assert!(!ConnCounters::default().set_field("no_such_counter", 1));
    }
}
