//! Counting global allocator: a deterministic peak-RSS proxy for benchmarks.
//!
//! The scale runner and the criterion benches install this as the
//! `#[global_allocator]` and read back live/peak heap bytes plus allocation
//! counts around a measured region. Unlike OS-level RSS sampling this is
//! exact, portable, and reproducible: the same run produces the same numbers.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System-allocator wrapper that tracks live bytes, peak live bytes, and the
/// number of allocation calls since the last [`CountingAlloc::reset`].
///
/// All counters use relaxed atomics: the benchmarks are single-threaded over
/// the measured region, and even under `rayon` fan-out the counts stay exact
/// (only the peak may be under-reported by a rarely-lost race, which is
/// acceptable for a proxy metric).
pub struct CountingAlloc {
    current: AtomicUsize,
    peak: AtomicUsize,
    allocs: AtomicUsize,
}

impl CountingAlloc {
    /// A fresh counter set (usable in `static` position).
    pub const fn new() -> Self {
        CountingAlloc {
            current: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            allocs: AtomicUsize::new(0),
        }
    }

    /// Live heap bytes right now.
    pub fn current_bytes(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark of live heap bytes since the last reset.
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Allocation calls (alloc + realloc) since the last reset.
    pub fn allocations(&self) -> usize {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Rebase the peak and allocation count to the current live size, so a
    /// measured region reports only its own growth.
    pub fn reset(&self) {
        let live = self.current.load(Ordering::Relaxed);
        self.peak.store(live, Ordering::Relaxed);
        self.allocs.store(0, Ordering::Relaxed);
    }

    fn record_alloc(&self, size: usize) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        let live = self.current.fetch_add(size, Ordering::Relaxed) + size;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn record_dealloc(&self, size: usize) {
        self.current.fetch_sub(size, Ordering::Relaxed);
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

// SAFETY: delegates every operation to `System`; only side effect is atomic
// counter bookkeeping, which allocates nothing itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            self.record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        self.record_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            self.allocs.fetch_add(1, Ordering::Relaxed);
            if new_size >= layout.size() {
                let grow = new_size - layout.size();
                let live = self.current.fetch_add(grow, Ordering::Relaxed) + grow;
                self.peak.fetch_max(live, Ordering::Relaxed);
            } else {
                self.current.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not installed as the global allocator in unit tests; exercise the
    // bookkeeping through the GlobalAlloc entry points directly.
    #[test]
    fn tracks_live_peak_and_count() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(1024, 8).unwrap();
        let p1 = unsafe { a.alloc(layout) };
        let p2 = unsafe { a.alloc(layout) };
        assert_eq!(a.current_bytes(), 2048);
        assert_eq!(a.peak_bytes(), 2048);
        assert_eq!(a.allocations(), 2);
        unsafe { a.dealloc(p1, layout) };
        assert_eq!(a.current_bytes(), 1024);
        assert_eq!(a.peak_bytes(), 2048, "peak is a high-water mark");
        unsafe { a.dealloc(p2, layout) };
        assert_eq!(a.current_bytes(), 0);
    }

    #[test]
    fn reset_rebases_to_live() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        let keep = unsafe { a.alloc(layout) };
        let drop_me = unsafe { a.alloc(layout) };
        unsafe { a.dealloc(drop_me, layout) };
        a.reset();
        assert_eq!(a.peak_bytes(), 64, "peak rebased to live bytes");
        assert_eq!(a.allocations(), 0);
        let p = unsafe { a.alloc(layout) };
        assert_eq!(a.peak_bytes(), 128);
        assert_eq!(a.allocations(), 1);
        unsafe { a.dealloc(p, layout) };
        unsafe { a.dealloc(keep, layout) };
    }

    #[test]
    fn realloc_adjusts_live_both_ways() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(100, 8).unwrap();
        let p = unsafe { a.alloc(layout) };
        let p = unsafe { a.realloc(p, layout, 300) };
        assert_eq!(a.current_bytes(), 300);
        let big = Layout::from_size_align(300, 8).unwrap();
        let p = unsafe { a.realloc(p, big, 50) };
        assert_eq!(a.current_bytes(), 50);
        assert_eq!(a.peak_bytes(), 300);
        unsafe { a.dealloc(p, Layout::from_size_align(50, 8).unwrap()) };
        assert_eq!(a.current_bytes(), 0);
    }
}
