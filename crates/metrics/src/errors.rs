//! Detection-error accounting.
//!
//! §3.7.2 defines three error kinds — note the paper's naming is inverted
//! relative to common usage, and we preserve the paper's definitions:
//!
//! * **false negative** — "the number of good peers that are wrongly
//!   disconnected",
//! * **false positive** — "the number of bad peers that are not identified
//!   and not disconnected",
//! * **false judgment** — the sum of the two.

use serde::{Deserialize, Serialize};

/// Error counters for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DetectionErrors {
    /// Good peers wrongly disconnected (paper's "false negative").
    pub false_negative: u64,
    /// Bad peers never identified/disconnected (paper's "false positive").
    pub false_positive: u64,
}

impl DetectionErrors {
    /// The paper's "false judgment": sum of both error kinds.
    pub fn false_judgment(&self) -> u64 {
        self.false_negative + self.false_positive
    }

    /// Record a wrongly cut good peer.
    pub fn record_good_peer_cut(&mut self) {
        self.false_negative += 1;
    }

    /// Record a bad peer that survived to the end of the run.
    pub fn record_bad_peer_missed(&mut self) {
        self.false_positive += 1;
    }

    /// Merge counters (e.g. across replicate runs).
    pub fn merge(&mut self, other: DetectionErrors) {
        self.false_negative += other.false_negative;
        self.false_positive += other.false_positive;
    }
}

impl ddp_snapshot::Snapshottable for DetectionErrors {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.u64(self.false_negative);
        enc.u64(self.false_positive);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(DetectionErrors { false_negative: dec.u64()?, false_positive: dec.u64()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn false_judgment_is_sum() {
        let e = DetectionErrors { false_negative: 3, false_positive: 4 };
        assert_eq!(e.false_judgment(), 7);
    }

    #[test]
    fn recording_increments_the_right_counter() {
        let mut e = DetectionErrors::default();
        e.record_good_peer_cut();
        e.record_good_peer_cut();
        e.record_bad_peer_missed();
        assert_eq!(e.false_negative, 2);
        assert_eq!(e.false_positive, 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = DetectionErrors { false_negative: 1, false_positive: 2 };
        a.merge(DetectionErrors { false_negative: 10, false_positive: 20 });
        assert_eq!(a, DetectionErrors { false_negative: 11, false_positive: 22 });
    }
}
