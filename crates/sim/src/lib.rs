//! Discrete-time overlay flooding simulator.
//!
//! This crate is the substrate the DD-POLICE paper runs its evaluation on: a
//! Gnutella-style unstructured overlay with flooding search, per-peer
//! processing capacities, per-link bandwidth limits, peer churn, and overlay
//! DDoS agents — all advanced in one-minute ticks (the paper's natural
//! accounting unit: every threshold and counter in DD-POLICE is per-minute).
//!
//! ## The batch flooding model
//!
//! Simulating each of an attacker's 20,000 queries/minute as an individual
//! message is infeasible and unnecessary: queries emitted by one origin in
//! one tick flood the same BFS tree. The engine therefore floods
//! **batches** `(origin, count, ttl)` breadth-first with:
//!
//! * per-node processing budgets (a good peer processes ≤ 1,000 queries/min,
//!   measured in §2.3 of the paper),
//! * per-directed-link bandwidth budgets (from the Saroiu bandwidth classes),
//! * duplicate suppression: a batch is processed at most once per node
//!   (exactly the paper's own §2.2 "no query message duplications"
//!   upper-bound assumption, here applied per BFS wave).
//!
//! Good peers' queries are count-1 batches carrying an object id; their
//! success and response time are tracked individually. Attack batches carry
//! no object and only consume capacity — which is precisely how they damage
//! the system.
//!
//! ## Plugging in a defense
//!
//! A [`defense::Defense`] observes each tick's per-edge traffic counters and
//! requests disconnections; the engine applies them, maintains ground-truth
//! error statistics, and (optionally) lets disconnected attackers rejoin —
//! the paper notes "no mechanism can prevent the DDoS agent from joining the
//! system again".

pub mod config;
pub mod defense;
pub mod engine;
pub mod faults;
pub mod flood;
pub mod node;
pub mod overlay;
pub mod pool;
pub mod session;

pub use config::{ForwardingPolicy, SimConfig};
pub use defense::{
    Actions, Defense, FrozenTick, NoDefense, ReportDelivery, TickObservation, TrafficReport,
};
pub use engine::{CutRecord, RunResult, Simulation};
pub use faults::{FaultConfig, FaultPlane, ReportOutcome};
pub use flood::{FloodEngine, FloodOutcome};
pub use node::{ListBehavior, NodeState, ReportBehavior, Role};
pub use overlay::Overlay;
pub use session::{SessionConfig, SessionStats, WhitewashConfig, WhitewashRecord};

/// Simulation time: one tick is one minute.
pub type Tick = u32;

/// Seconds per simulation tick.
pub const SECS_PER_TICK: u32 = 60;
