//! Per-peer simulation state.

use ddp_topology::NodeId;
use ddp_workload::BandwidthClass;

/// How a peer answers `Neighbor_Traffic` report requests (§3.4's cheating
/// analysis). Good peers are honest; a compromised peer may lie.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReportBehavior {
    /// Report true counters.
    Honest,
    /// Case 1 of §3.4: report `factor ×` the true count of queries it sent
    /// (factor > 1).
    Inflate(f64),
    /// Case 2 of §3.4: report `factor ×` the true count (factor < 1),
    /// trying to get an innocent forwarder blamed.
    Deflate(f64),
    /// Choice 3 of §3.4: "refuse to report" — peers then "just assume that
    /// peer j sent 0 query to peer m".
    Silent,
    /// Coordinated shielding (beyond §3.4's lone cheater): when asked about
    /// a *fellow colluder* (any peer whose own behavior is also
    /// `ShieldColluders`), report `factor ×` the true count of queries
    /// received from it (factor < 1), hiding the colluder's output from its
    /// Buddy Group. Reports about everyone else are honest, so the colluder
    /// blends in as a credible witness.
    ShieldColluders {
        /// Multiplier applied to `received_from_suspect` claims about
        /// fellow colluders (< 1).
        factor: f64,
    },
    /// Coordinated framing: when asked about the designated innocent
    /// `victim`, report `inflate ×` the true count of queries received from
    /// it (inflate > 1), manufacturing phantom output that drives the
    /// victim's General Indicator over `CT`. Reports about everyone else
    /// are honest.
    FrameVictim {
        /// The innocent peer the coalition lies about.
        victim: NodeId,
        /// Multiplier applied to `received_from_suspect` claims about the
        /// victim (> 1).
        inflate: f64,
    },
}

/// How a peer answers the neighbor-list exchange (§3.1). The paper notes "a
/// malicious peer could lie about who are its neighbors" and prescribes a
/// consistency check; these are the lies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListBehavior {
    /// Announce the true neighbor list.
    Truthful,
    /// Pad the announced list with `extra` peers that are *not* neighbors.
    /// Each phantom member contributes nothing to the Buddy-Group sums while
    /// raising `k`, which deflates the General Indicator — an evasion trick
    /// the §3.1 consistency check exists to stop.
    PadFake { extra: u8 },
    /// Hide all real neighbors (announce an empty list).
    Omit,
    /// Refuse the exchange entirely.
    Refuse,
}

/// Ground-truth role of a peer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Role {
    /// Issues queries at the human rate, forwards what it can.
    Good,
    /// DDoS agent: floods `rate_qpm` bogus queries per minute per link
    /// (capped by link capacity, §3.5's `Q_d = min{20000, link}`), and
    /// responds to report requests per `report`.
    Attacker { rate_qpm: u32, report: ReportBehavior },
}

impl Role {
    /// Whether this peer is a DDoS agent.
    #[inline]
    pub fn is_attacker(&self) -> bool {
        matches!(self, Role::Attacker { .. })
    }

    /// The report behavior of this peer (good peers are honest).
    #[inline]
    pub fn report_behavior(&self) -> ReportBehavior {
        match *self {
            Role::Good => ReportBehavior::Honest,
            Role::Attacker { report, .. } => report,
        }
    }
}

/// Mutable per-peer state.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// Whether the peer is currently in the overlay.
    pub online: bool,
    /// Ground-truth role.
    pub role: Role,
    /// Bottleneck bandwidth class.
    pub bandwidth: BandwidthClass,
    /// Query processing capacity, queries/minute.
    pub capacity_qpm: u32,
    /// Remaining session lifetime, minutes.
    pub lifetime_left: u32,
    /// Tick at which an offline slot rejoins (u32::MAX = not scheduled).
    pub rejoin_at: u32,
    /// Utilization (processed/capacity) in the previous tick, feeding the
    /// congestion-delay model.
    pub prev_utilization: f32,
    /// Whether this peer runs the detection protocol (attackers do not
    /// police others).
    pub runs_defense: bool,
    /// Whether a defense drove this peer's degree to zero (attackers so
    /// isolated may only return per the rejoin policy; natural churn losses
    /// are re-dialed immediately).
    pub defensively_isolated: bool,
    /// First tick this peer emits traffic (whitewashed agents lie low for a
    /// quiet window after rejoining; 0 = active from the start).
    pub dormant_until: u32,
    /// How this peer answers the neighbor-list exchange.
    pub list_behavior: ListBehavior,
}

impl NodeState {
    /// Fresh good-peer state.
    pub fn good(bandwidth: BandwidthClass, capacity_qpm: u32, lifetime: u32) -> Self {
        NodeState {
            online: true,
            role: Role::Good,
            bandwidth,
            capacity_qpm,
            lifetime_left: lifetime,
            rejoin_at: u32::MAX,
            prev_utilization: 0.0,
            runs_defense: true,
            defensively_isolated: false,
            dormant_until: 0,
            list_behavior: ListBehavior::Truthful,
        }
    }

    /// Turn this slot into a DDoS agent.
    pub fn make_attacker(&mut self, rate_qpm: u32, report: ReportBehavior) {
        self.role = Role::Attacker { rate_qpm, report };
        // A dedicated attack machine processes at its generation rate and
        // does not leave voluntarily.
        self.capacity_qpm = self.capacity_qpm.max(rate_qpm);
        self.lifetime_left = u32::MAX;
        self.runs_defense = false;
    }
}

impl ddp_snapshot::Snapshottable for ReportBehavior {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        match *self {
            ReportBehavior::Honest => enc.u8(0),
            ReportBehavior::Inflate(f) => {
                enc.u8(1);
                enc.f64(f);
            }
            ReportBehavior::Deflate(f) => {
                enc.u8(2);
                enc.f64(f);
            }
            ReportBehavior::Silent => enc.u8(3),
            ReportBehavior::ShieldColluders { factor } => {
                enc.u8(4);
                enc.f64(factor);
            }
            ReportBehavior::FrameVictim { victim, inflate } => {
                enc.u8(5);
                enc.u32(victim.0);
                enc.f64(inflate);
            }
        }
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(match dec.u8()? {
            0 => ReportBehavior::Honest,
            1 => ReportBehavior::Inflate(dec.f64()?),
            2 => ReportBehavior::Deflate(dec.f64()?),
            3 => ReportBehavior::Silent,
            4 => ReportBehavior::ShieldColluders { factor: dec.f64()? },
            5 => ReportBehavior::FrameVictim { victim: NodeId(dec.u32()?), inflate: dec.f64()? },
            _ => return Err(ddp_snapshot::SnapshotError::Corrupt { what: "ReportBehavior tag" }),
        })
    }
}

impl ddp_snapshot::Snapshottable for ListBehavior {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        match *self {
            ListBehavior::Truthful => enc.u8(0),
            ListBehavior::PadFake { extra } => {
                enc.u8(1);
                enc.u8(extra);
            }
            ListBehavior::Omit => enc.u8(2),
            ListBehavior::Refuse => enc.u8(3),
        }
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(match dec.u8()? {
            0 => ListBehavior::Truthful,
            1 => ListBehavior::PadFake { extra: dec.u8()? },
            2 => ListBehavior::Omit,
            3 => ListBehavior::Refuse,
            _ => return Err(ddp_snapshot::SnapshotError::Corrupt { what: "ListBehavior tag" }),
        })
    }
}

impl ddp_snapshot::Snapshottable for Role {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        match *self {
            Role::Good => enc.u8(0),
            Role::Attacker { rate_qpm, report } => {
                enc.u8(1);
                enc.u32(rate_qpm);
                enc.put(&report);
            }
        }
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(match dec.u8()? {
            0 => Role::Good,
            1 => Role::Attacker { rate_qpm: dec.u32()?, report: dec.get()? },
            _ => return Err(ddp_snapshot::SnapshotError::Corrupt { what: "Role tag" }),
        })
    }
}

/// `BandwidthClass` lives in `ddp-workload`, which stays snapshot-free; the
/// class index is encoded here instead.
fn bandwidth_tag(c: BandwidthClass) -> u8 {
    match c {
        BandwidthClass::Dialup => 0,
        BandwidthClass::Dsl => 1,
        BandwidthClass::Cable => 2,
        BandwidthClass::Ethernet => 3,
    }
}

fn bandwidth_from_tag(tag: u8) -> Result<BandwidthClass, ddp_snapshot::SnapshotError> {
    Ok(match tag {
        0 => BandwidthClass::Dialup,
        1 => BandwidthClass::Dsl,
        2 => BandwidthClass::Cable,
        3 => BandwidthClass::Ethernet,
        _ => return Err(ddp_snapshot::SnapshotError::Corrupt { what: "BandwidthClass tag" }),
    })
}

impl ddp_snapshot::Snapshottable for NodeState {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.bool(self.online);
        enc.put(&self.role);
        enc.u8(bandwidth_tag(self.bandwidth));
        enc.u32(self.capacity_qpm);
        enc.u32(self.lifetime_left);
        enc.u32(self.rejoin_at);
        enc.f32(self.prev_utilization);
        enc.bool(self.runs_defense);
        enc.bool(self.defensively_isolated);
        enc.u32(self.dormant_until);
        enc.put(&self.list_behavior);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(NodeState {
            online: dec.bool()?,
            role: dec.get()?,
            bandwidth: bandwidth_from_tag(dec.u8()?)?,
            capacity_qpm: dec.u32()?,
            lifetime_left: dec.u32()?,
            rejoin_at: dec.u32()?,
            prev_utilization: dec.f32()?,
            runs_defense: dec.bool()?,
            defensively_isolated: dec.bool()?,
            dormant_until: dec.u32()?,
            list_behavior: dec.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn good_peer_defaults() {
        let n = NodeState::good(BandwidthClass::Cable, 1000, 10);
        assert!(n.online);
        assert!(!n.role.is_attacker());
        assert_eq!(n.role.report_behavior(), ReportBehavior::Honest);
        assert!(n.runs_defense);
    }

    #[test]
    fn node_state_snapshot_roundtrip_covers_every_variant() {
        let mut states = vec![NodeState::good(BandwidthClass::Dsl, 950, 17)];
        for report in [
            ReportBehavior::Honest,
            ReportBehavior::Inflate(3.0),
            ReportBehavior::Deflate(0.25),
            ReportBehavior::Silent,
            ReportBehavior::ShieldColluders { factor: 0.1 },
            ReportBehavior::FrameVictim { victim: NodeId(42), inflate: 5.0 },
        ] {
            let mut s = NodeState::good(BandwidthClass::Ethernet, 1000, 9);
            s.make_attacker(20_000, report);
            s.dormant_until = 7;
            states.push(s);
        }
        for list in [
            ListBehavior::Truthful,
            ListBehavior::PadFake { extra: 4 },
            ListBehavior::Omit,
            ListBehavior::Refuse,
        ] {
            let mut s = NodeState::good(BandwidthClass::Dialup, 800, 3);
            s.list_behavior = list;
            states.push(s);
        }
        let mut enc = ddp_snapshot::Enc::new();
        enc.put(&states);
        let bytes = enc.into_bytes();
        let mut dec = ddp_snapshot::Dec::new(&bytes);
        let back: Vec<NodeState> = dec.get().unwrap();
        dec.finish().unwrap();
        for (a, b) in states.iter().zip(&back) {
            assert_eq!(a.online, b.online);
            assert_eq!(a.role, b.role);
            assert_eq!(a.bandwidth, b.bandwidth);
            assert_eq!(a.capacity_qpm, b.capacity_qpm);
            assert_eq!(a.lifetime_left, b.lifetime_left);
            assert_eq!(a.rejoin_at, b.rejoin_at);
            assert_eq!(a.list_behavior, b.list_behavior);
        }
    }

    #[test]
    fn make_attacker_upgrades_capacity_and_pins_lifetime() {
        let mut n = NodeState::good(BandwidthClass::Dialup, 1000, 5);
        n.make_attacker(20_000, ReportBehavior::Silent);
        assert!(n.role.is_attacker());
        assert_eq!(n.capacity_qpm, 20_000);
        assert_eq!(n.lifetime_left, u32::MAX);
        assert!(!n.runs_defense);
        assert_eq!(n.role.report_behavior(), ReportBehavior::Silent);
    }
}
