//! Per-peer simulation state.

use ddp_topology::NodeId;
use ddp_workload::BandwidthClass;

/// How a peer answers `Neighbor_Traffic` report requests (§3.4's cheating
/// analysis). Good peers are honest; a compromised peer may lie.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReportBehavior {
    /// Report true counters.
    Honest,
    /// Case 1 of §3.4: report `factor ×` the true count of queries it sent
    /// (factor > 1).
    Inflate(f64),
    /// Case 2 of §3.4: report `factor ×` the true count (factor < 1),
    /// trying to get an innocent forwarder blamed.
    Deflate(f64),
    /// Choice 3 of §3.4: "refuse to report" — peers then "just assume that
    /// peer j sent 0 query to peer m".
    Silent,
    /// Coordinated shielding (beyond §3.4's lone cheater): when asked about
    /// a *fellow colluder* (any peer whose own behavior is also
    /// `ShieldColluders`), report `factor ×` the true count of queries
    /// received from it (factor < 1), hiding the colluder's output from its
    /// Buddy Group. Reports about everyone else are honest, so the colluder
    /// blends in as a credible witness.
    ShieldColluders {
        /// Multiplier applied to `received_from_suspect` claims about
        /// fellow colluders (< 1).
        factor: f64,
    },
    /// Coordinated framing: when asked about the designated innocent
    /// `victim`, report `inflate ×` the true count of queries received from
    /// it (inflate > 1), manufacturing phantom output that drives the
    /// victim's General Indicator over `CT`. Reports about everyone else
    /// are honest.
    FrameVictim {
        /// The innocent peer the coalition lies about.
        victim: NodeId,
        /// Multiplier applied to `received_from_suspect` claims about the
        /// victim (> 1).
        inflate: f64,
    },
}

/// How a peer answers the neighbor-list exchange (§3.1). The paper notes "a
/// malicious peer could lie about who are its neighbors" and prescribes a
/// consistency check; these are the lies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListBehavior {
    /// Announce the true neighbor list.
    Truthful,
    /// Pad the announced list with `extra` peers that are *not* neighbors.
    /// Each phantom member contributes nothing to the Buddy-Group sums while
    /// raising `k`, which deflates the General Indicator — an evasion trick
    /// the §3.1 consistency check exists to stop.
    PadFake { extra: u8 },
    /// Hide all real neighbors (announce an empty list).
    Omit,
    /// Refuse the exchange entirely.
    Refuse,
}

/// Ground-truth role of a peer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Role {
    /// Issues queries at the human rate, forwards what it can.
    Good,
    /// DDoS agent: floods `rate_qpm` bogus queries per minute per link
    /// (capped by link capacity, §3.5's `Q_d = min{20000, link}`), and
    /// responds to report requests per `report`.
    Attacker { rate_qpm: u32, report: ReportBehavior },
}

impl Role {
    /// Whether this peer is a DDoS agent.
    #[inline]
    pub fn is_attacker(&self) -> bool {
        matches!(self, Role::Attacker { .. })
    }

    /// The report behavior of this peer (good peers are honest).
    #[inline]
    pub fn report_behavior(&self) -> ReportBehavior {
        match *self {
            Role::Good => ReportBehavior::Honest,
            Role::Attacker { report, .. } => report,
        }
    }
}

/// Mutable per-peer state.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// Whether the peer is currently in the overlay.
    pub online: bool,
    /// Ground-truth role.
    pub role: Role,
    /// Bottleneck bandwidth class.
    pub bandwidth: BandwidthClass,
    /// Query processing capacity, queries/minute.
    pub capacity_qpm: u32,
    /// Remaining session lifetime, minutes.
    pub lifetime_left: u32,
    /// Tick at which an offline slot rejoins (u32::MAX = not scheduled).
    pub rejoin_at: u32,
    /// Utilization (processed/capacity) in the previous tick, feeding the
    /// congestion-delay model.
    pub prev_utilization: f32,
    /// Whether this peer runs the detection protocol (attackers do not
    /// police others).
    pub runs_defense: bool,
    /// Whether a defense drove this peer's degree to zero (attackers so
    /// isolated may only return per the rejoin policy; natural churn losses
    /// are re-dialed immediately).
    pub defensively_isolated: bool,
    /// First tick this peer emits traffic (whitewashed agents lie low for a
    /// quiet window after rejoining; 0 = active from the start).
    pub dormant_until: u32,
    /// How this peer answers the neighbor-list exchange.
    pub list_behavior: ListBehavior,
}

impl NodeState {
    /// Fresh good-peer state.
    pub fn good(bandwidth: BandwidthClass, capacity_qpm: u32, lifetime: u32) -> Self {
        NodeState {
            online: true,
            role: Role::Good,
            bandwidth,
            capacity_qpm,
            lifetime_left: lifetime,
            rejoin_at: u32::MAX,
            prev_utilization: 0.0,
            runs_defense: true,
            defensively_isolated: false,
            dormant_until: 0,
            list_behavior: ListBehavior::Truthful,
        }
    }

    /// Turn this slot into a DDoS agent.
    pub fn make_attacker(&mut self, rate_qpm: u32, report: ReportBehavior) {
        self.role = Role::Attacker { rate_qpm, report };
        // A dedicated attack machine processes at its generation rate and
        // does not leave voluntarily.
        self.capacity_qpm = self.capacity_qpm.max(rate_qpm);
        self.lifetime_left = u32::MAX;
        self.runs_defense = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn good_peer_defaults() {
        let n = NodeState::good(BandwidthClass::Cable, 1000, 10);
        assert!(n.online);
        assert!(!n.role.is_attacker());
        assert_eq!(n.role.report_behavior(), ReportBehavior::Honest);
        assert!(n.runs_defense);
    }

    #[test]
    fn make_attacker_upgrades_capacity_and_pins_lifetime() {
        let mut n = NodeState::good(BandwidthClass::Dialup, 1000, 5);
        n.make_attacker(20_000, ReportBehavior::Silent);
        assert!(n.role.is_attacker());
        assert_eq!(n.capacity_qpm, 20_000);
        assert_eq!(n.lifetime_left, u32::MAX);
        assert!(!n.runs_defense);
        assert_eq!(n.role.report_behavior(), ReportBehavior::Silent);
    }
}
