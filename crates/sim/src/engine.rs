//! The tick-loop simulation engine.

use crate::config::SimConfig;
use crate::defense::{Actions, Defense, TickObservation};
use crate::faults::FaultPlane;
use crate::flood::{FirstHop, FloodEngine, FloodEnv};
use crate::node::{ListBehavior, NodeState, ReportBehavior, Role};
use crate::overlay::Overlay;
use crate::session::{sample_poisson, SessionStats, WhitewashConfig, WhitewashRecord};
use crate::Tick;
use ddp_metrics::summary::{RunSeries, RunSummary};
use ddp_metrics::{
    DetectionErrors, HashSeries, P2Quantile, ParallelStats, ResponseStats, SuccessStats,
    TrafficAccumulator, VerdictLedger, VerdictTransition,
};
use ddp_snapshot::{Dec, Enc, SnapshotError, Snapshottable};
use ddp_topology::{DynamicGraph, Half, NodeId, Partition};
use ddp_workload::ContentCatalog;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::path::Path;

/// One defensive disconnection, for observability and post-hoc analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutRecord {
    /// Tick the cut was applied.
    pub tick: Tick,
    /// The peer that decided to disconnect.
    pub observer: NodeId,
    /// The peer that was disconnected.
    pub suspect: NodeId,
    /// Ground truth: was the suspect actually a DDoS agent?
    pub suspect_was_attacker: bool,
}

/// Everything a finished run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Per-tick series.
    pub series: RunSeries,
    /// Aggregates.
    pub summary: RunSummary,
    /// Every defensive disconnection, in order.
    pub cut_log: Vec<CutRecord>,
    /// Every verdict-lifecycle transition the defense decided, in order
    /// (empty for defenses without a verdict state machine). Note this logs
    /// *decisions*: a `Cut` entry may have no matching [`CutRecord`] when a
    /// second observer condemned an already-severed edge in the same tick.
    pub verdict_log: Vec<VerdictTransition>,
}

/// One query or attack emission scheduled within a tick.
#[derive(Debug, Clone, Copy)]
enum Emission {
    /// A good peer's search for `object`.
    Good { origin: NodeId, object: ddp_workload::ObjectId },
    /// An attacker's per-link flood of `count` bogus queries.
    Attack { origin: NodeId, slot: u32, count: u32 },
}

/// The simulation: overlay + peers + workload + attack + defense.
pub struct Simulation<D: Defense> {
    cfg: SimConfig,
    overlay: Overlay,
    nodes: Vec<NodeState>,
    catalog: ContentCatalog,
    flood: FloodEngine,
    defense: D,
    tick: Tick,
    /// The master seed the run was built from; part of the snapshot context
    /// fingerprint so a checkpoint cannot be resumed under a different seed.
    master_seed: u64,
    rng_workload: StdRng,
    rng_churn: StdRng,
    /// Session-model / whitewash stream (stream 6): every draw the open
    /// membership model makes comes from here, so enabling it never perturbs
    /// the topology, content, workload, legacy-churn, or fault streams.
    rng_session: StdRng,
    /// Control-plane transport (inert unless `cfg.faults` injects faults).
    fault_plane: FaultPlane,

    // Session-model state (inert unless `cfg.session` is set).
    /// Slots of permanently departed peers, available for recycling.
    free_slots: Vec<usize>,
    /// Membership-dynamics totals.
    session_stats: SessionStats,

    // Whitewash state (inert unless `enable_whitewash` was called).
    whitewash: Option<WhitewashConfig>,
    /// `(old slot, rebirth tick)` for cut agents dwelling offline.
    whitewash_pending: Vec<(usize, Tick)>,
    /// Completed identity changes, in order.
    whitewash_log: Vec<WhitewashRecord>,

    // Per-tick scratch, refreshed from `nodes` each tick.
    node_used: Vec<u32>,
    online: Vec<bool>,
    capacity: Vec<u32>,
    prev_util: Vec<f32>,
    runs_defense: Vec<bool>,
    report_behavior: Vec<ReportBehavior>,
    list_behavior: Vec<ListBehavior>,
    emissions: Vec<Emission>,

    // Accounting.
    series: RunSeries,
    errors: DetectionErrors,
    attackers_cut: u64,
    good_peers_cut: u64,
    /// Whether each node was ever defensively disconnected (terminal
    /// false-positive accounting: an attacker never cut was never caught).
    ever_cut: Vec<bool>,
    /// Whether this good-peer incarnation was already counted as a false
    /// negative — the paper counts wrongly disconnected *peers*, not cut
    /// events.
    counted_wrongly_cut: Vec<bool>,
    /// Every defensive disconnection, in order.
    cut_log: Vec<CutRecord>,
    /// Verdict-lifecycle audit trail (fed by `Actions::transitions`).
    verdict_ledger: VerdictLedger,
    /// Open wrongful-cut intervals: `(observer, suspect)` → tick the good
    /// peer's edge was severed. Closed when the pair re-links (any add-edge
    /// path) or either endpoint departs; censored at run end.
    wrongful_open: HashMap<(NodeId, NodeId), Tick>,
    /// Closed (or censored) wrongful-cut durations, in ticks.
    wrongful_durations: Vec<u32>,
    /// Streaming 95th-percentile response time over the whole run.
    response_p95: P2Quantile,

    // Parallel tick engine. None of this enters `save_payload` — a snapshot
    // written at any worker count must restore identically at any other.
    /// Worker-pool width; 1 means fully serial (the default).
    threads: usize,
    /// Per-tick state-hash trace, recorded only when enabled (differential
    /// suites turn it on; production runs skip the per-tick serialization).
    hash_trace: Option<HashSeries>,
    /// What the worker pool did this run (observability only).
    parallel_stats: ParallelStats,
}

/// Draw one good peer's processing capacity (mean x uniform spread).
fn sample_capacity(cfg: &SimConfig, rng: &mut StdRng) -> u32 {
    let spread = cfg.capacity_spread.clamp(0.0, 0.95);
    let factor = 1.0 - spread + 2.0 * spread * rng.gen::<f64>();
    ((cfg.good_capacity_qpm as f64 * factor).round() as u32).max(1)
}

fn derive_seed(master: u64, stream: u64) -> u64 {
    // SplitMix64 finalizer over (master, stream).
    let mut z = master ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl<D: Defense> Simulation<D> {
    /// Build a simulation from a config, a defense, and a master seed.
    ///
    /// Every random stream (topology, content, workload, churn) derives from
    /// `seed`, so runs are exactly reproducible.
    pub fn new(cfg: SimConfig, defense: D, seed: u64) -> Self {
        let n = cfg.peers();
        let mut rng_topo = StdRng::seed_from_u64(derive_seed(seed, 1));
        let mut rng_content = StdRng::seed_from_u64(derive_seed(seed, 2));
        let rng_workload = StdRng::seed_from_u64(derive_seed(seed, 3));
        let mut rng_churn = StdRng::seed_from_u64(derive_seed(seed, 4));
        let fault_plane = FaultPlane::new(cfg.faults.clone(), derive_seed(seed, 5));
        let rng_session = StdRng::seed_from_u64(derive_seed(seed, 6));

        let graph = cfg.topology.generate(&mut rng_topo);
        let classes: Vec<_> = (0..n).map(|_| cfg.bandwidth.sample(&mut rng_churn)).collect();
        let overlay = Overlay::new(graph, &classes);
        let catalog = ContentCatalog::generate(n, &cfg.content, &mut rng_content);
        let nodes: Vec<NodeState> = classes
            .iter()
            .map(|&bw| {
                NodeState::good(
                    bw,
                    sample_capacity(&cfg, &mut rng_churn),
                    cfg.lifetime.sample_minutes(&mut rng_churn),
                )
            })
            .collect();

        Simulation {
            flood: FloodEngine::new(n),
            node_used: vec![0; n],
            online: vec![true; n],
            capacity: vec![cfg.good_capacity_qpm; n],
            prev_util: vec![0.0; n],
            runs_defense: vec![true; n],
            report_behavior: vec![ReportBehavior::Honest; n],
            list_behavior: vec![ListBehavior::Truthful; n],
            emissions: Vec::new(),
            series: RunSeries::new(),
            errors: DetectionErrors::default(),
            attackers_cut: 0,
            good_peers_cut: 0,
            ever_cut: vec![false; n],
            counted_wrongly_cut: vec![false; n],
            cut_log: Vec::new(),
            verdict_ledger: VerdictLedger::new(),
            wrongful_open: HashMap::new(),
            wrongful_durations: Vec::new(),
            response_p95: P2Quantile::new(0.95),
            tick: 0,
            master_seed: seed,
            cfg,
            overlay,
            nodes,
            catalog,
            defense,
            rng_workload,
            rng_churn,
            rng_session,
            fault_plane,
            free_slots: Vec::new(),
            session_stats: SessionStats::default(),
            whitewash: None,
            whitewash_pending: Vec::new(),
            whitewash_log: Vec::new(),
            threads: 1,
            hash_trace: None,
            parallel_stats: ParallelStats { threads: 1, ..ParallelStats::default() },
        }
    }

    /// Set the worker-pool width for the parallel tick engine. `1` (the
    /// default) runs every phase inline on the caller's thread. Any value is
    /// observably equivalent: the engine's state trajectory, snapshots, and
    /// results are byte-identical across thread counts — that contract is
    /// pinned by the serial-vs-parallel differential suite.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
        self.parallel_stats.threads = self.threads;
        self.defense.set_parallelism(self.threads);
    }

    /// The configured worker-pool width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// FNV-1a digest of the complete snapshot payload — every byte of state
    /// that survives a tick boundary, in the exact encoding
    /// [`save_snapshot`](Self::save_snapshot) writes. Two runs whose hashes
    /// match tick-for-tick are in byte-identical states.
    pub fn state_hash(&self) -> u64 {
        ddp_snapshot::fnv1a64(&self.save_payload())
    }

    /// Record [`state_hash`](Self::state_hash) at the end of every
    /// subsequent tick. Costs one full state serialization per tick, so it
    /// is opt-in for differential testing rather than always-on.
    pub fn enable_hash_trace(&mut self) {
        self.hash_trace.get_or_insert_with(HashSeries::new);
    }

    /// The per-tick hashes recorded since [`enable_hash_trace`]
    /// (Self::enable_hash_trace), empty when tracing is off.
    pub fn hash_trace(&self) -> &[u64] {
        self.hash_trace.as_ref().map_or(&[], |t| t.as_slice())
    }

    /// Worker-pool accounting for this run (never part of engine state).
    pub fn parallel_stats(&self) -> ParallelStats {
        self.parallel_stats
    }

    /// Turn `node` into a DDoS agent with the configured rate.
    pub fn make_attacker(&mut self, node: NodeId, report: ReportBehavior) {
        let rate = self.cfg.attacker_rate_qpm;
        self.nodes[node.index()].make_attacker(rate, report);
    }

    /// Set how `node` answers the neighbor-list exchange (§3.1 lying study).
    pub fn set_list_behavior(&mut self, node: NodeId, behavior: ListBehavior) {
        self.nodes[node.index()].list_behavior = behavior;
    }

    /// Ids of all current attackers.
    pub fn attackers(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.role.is_attacker())
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// The configuration this run uses.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The live overlay (for inspection in tests/examples).
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// Ground-truth role of a node.
    pub fn role(&self, node: NodeId) -> Role {
        self.nodes[node.index()].role
    }

    /// Whether a node is online.
    pub fn is_online(&self, node: NodeId) -> bool {
        self.nodes[node.index()].online
    }

    /// Current tick.
    pub fn tick(&self) -> Tick {
        self.tick
    }

    /// Current number of node slots (grows under the session model).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The defense, for post-run inspection (diagnostics, bounded-memory
    /// assertions).
    pub fn defense(&self) -> &D {
        &self.defense
    }

    /// Membership-dynamics totals (all zero outside the session model).
    pub fn session_stats(&self) -> SessionStats {
        self.session_stats
    }

    /// Arm whitewashing: a defensively isolated (fully cut) attacker dwells
    /// offline for `dwell_ticks`, then rejoins under a brand-new `NodeId`
    /// with a clean record, optionally lying dormant for `quiet_ticks`
    /// before flooding again. The abandoned slot stays offline forever.
    pub fn enable_whitewash(&mut self, cfg: WhitewashConfig) {
        self.whitewash = Some(cfg);
    }

    /// Completed identity changes, in order (empty unless whitewashing was
    /// enabled and at least one agent was cut and reborn).
    pub fn whitewash_log(&self) -> &[WhitewashRecord] {
        &self.whitewash_log
    }

    /// The defense, mutably (differential harnesses flip tracing knobs
    /// between ticks).
    pub fn defense_mut(&mut self) -> &mut D {
        &mut self.defense
    }

    /// Every defensive disconnection decided so far, in order (the live view
    /// of the final [`RunResult::cut_log`]).
    pub fn cut_log(&self) -> &[CutRecord] {
        &self.cut_log
    }

    /// Every verdict-lifecycle transition recorded so far, in order.
    pub fn verdict_log(&self) -> &[VerdictTransition] {
        &self.verdict_ledger.log
    }

    /// Per-tick series accumulated so far.
    pub fn series(&self) -> &RunSeries {
        &self.series
    }

    /// Advance the simulation by one tick (one minute).
    pub fn step(&mut self) {
        self.tick += 1;
        self.fault_plane.begin_tick(self.tick);
        self.churn_step();
        self.crash_step();
        self.refresh_scratch();
        self.overlay.reset_tick_counters();
        self.node_used.fill(0);

        let mut traffic = TrafficAccumulator::default();
        let mut success = SuccessStats::default();
        let mut response = ResponseStats::default();
        self.build_emissions();
        self.execute_emissions(&mut traffic, &mut success, &mut response);
        self.update_utilization();
        self.run_defense(&mut traffic);

        self.series.success_rate.push(success.rate());
        self.series.response_time.push(response.mean());
        self.series.traffic.push(traffic.total() as f64);
        self.series.control_traffic.push(traffic.control_msgs as f64);
        self.series.drop_rate.push(traffic.drop_rate());
        if self.hash_trace.is_some() {
            let h = self.state_hash();
            if let Some(trace) = &mut self.hash_trace {
                trace.record(h);
            }
        }
    }

    /// Run `ticks` minutes and summarize.
    pub fn run(mut self, ticks: usize) -> RunResult {
        for _ in 0..ticks {
            self.step();
        }
        self.finish()
    }

    /// Finish accounting (terminal false positives) and summarize.
    pub fn finish(mut self) -> RunResult {
        // Paper's "false positive": "bad peers that are not identified and
        // not disconnected" — attackers still holding overlay connections
        // when the run ends. `attackers_never_cut` additionally reports the
        // strictly-never-identified count (an attacker cut once but re-linked
        // by an unsuspecting joiner counts there as identified).
        let mut never_cut = 0u64;
        for (i, s) in self.nodes.iter().enumerate() {
            if s.role.is_attacker() {
                if self.overlay.degree(NodeId::from_index(i)) > 0 {
                    self.errors.record_bad_peer_missed();
                }
                if !self.ever_cut[i] {
                    never_cut += 1;
                }
            }
        }
        // Censor wrongful-cut intervals still open at run end. Drain in
        // sorted key order: HashMap iteration order differs between equal
        // maps, and the duration list's order feeds f64 summary sums.
        let final_tick = self.tick;
        let mut open: Vec<((NodeId, NodeId), Tick)> = self.wrongful_open.drain().collect();
        open.sort_unstable_by_key(|&((a, b), _)| (a.0, b.0));
        for (_, start) in open {
            self.wrongful_durations.push(final_tick.saturating_sub(start));
        }
        let mut summary =
            self.series.summarize(self.errors, self.attackers_cut, self.good_peers_cut);
        summary.attackers_never_cut = never_cut;
        summary.monitor_backend = self.defense.monitor_backend();
        summary.response_p95_secs = self.response_p95.estimate();
        summary.resilience = self.fault_plane.stats();
        summary.verdicts = self.verdict_ledger.summarize(&self.wrongful_durations);
        RunResult {
            series: self.series,
            summary,
            cut_log: self.cut_log,
            verdict_log: self.verdict_ledger.log,
        }
    }

    /// Per-tick snapshot of success-critical slices from node state.
    fn refresh_scratch(&mut self) {
        for (i, s) in self.nodes.iter().enumerate() {
            self.online[i] = s.online;
            self.capacity[i] = s.capacity_qpm;
            self.runs_defense[i] = s.runs_defense && s.online;
            self.report_behavior[i] = s.role.report_behavior();
            self.list_behavior[i] = s.list_behavior;
        }
    }

    fn churn_step(&mut self) {
        self.whitewash_rebirths();
        let session_on = self.cfg.session.is_some();
        // Departures and rejoins. Note the loop bound is the population at
        // tick start: slots grown by arrivals below are not revisited until
        // the next tick.
        for i in 0..self.nodes.len() {
            let node = NodeId::from_index(i);
            if self.nodes[i].online {
                if self.nodes[i].role.is_attacker() {
                    if self.whitewash.is_some() && self.nodes[i].defensively_isolated {
                        // Whitewash owns the comeback: schedule a rebirth
                        // under a fresh identity instead of the slot-rejoin
                        // policy.
                        self.whitewash_schedule(node);
                        continue;
                    }
                    // Dedicated agents do not churn; they only re-connect
                    // after being cut off (handled below).
                    self.try_reconnect_attacker(node);
                    continue;
                }
                if session_on {
                    // Open membership: a finished session leaves for good.
                    self.nodes[i].lifetime_left = self.nodes[i].lifetime_left.saturating_sub(1);
                    if self.nodes[i].lifetime_left == 0 {
                        self.depart_permanently(node);
                    }
                } else if self.cfg.churn {
                    self.nodes[i].lifetime_left = self.nodes[i].lifetime_left.saturating_sub(1);
                    if self.nodes[i].lifetime_left == 0 {
                        self.depart(node);
                    }
                }
            } else if !session_on && self.tick >= self.nodes[i].rejoin_at {
                self.rejoin(node);
            }
        }
        if session_on {
            self.session_arrivals();
        }
        // Connectivity maintenance: peers that lost links (departed
        // neighbors, defensive cuts) seek replacements, as real servents do.
        self.maintain_connectivity();
    }

    /// Crash-restart injection: a crashed peer keeps its overlay links (the
    /// process restarts within the minute) but its detection-protocol state
    /// — exchange views, suspicion streaks, in-flight mail — is wiped.
    fn crash_step(&mut self) {
        if self.cfg.faults.crash_prob <= 0.0 {
            return;
        }
        for i in 0..self.nodes.len() {
            let node = NodeId::from_index(i);
            if self.nodes[i].online
                && self.nodes[i].runs_defense
                && self.fault_plane.crashes(self.tick, node)
            {
                self.defense.on_peer_reset(node);
            }
        }
    }

    /// The pair re-linked: any matching wrongful-cut interval ends now.
    fn close_wrongful(&mut self, u: NodeId, v: NodeId) {
        for key in [(u, v), (v, u)] {
            if let Some(start) = self.wrongful_open.remove(&key) {
                self.wrongful_durations.push(self.tick.saturating_sub(start));
            }
        }
    }

    /// `node` left the overlay: intervals involving it no longer measure a
    /// wrongful severance (the peer is gone either way).
    fn close_wrongful_for(&mut self, node: NodeId) {
        // Close in sorted key order, not HashMap iteration order: the
        // duration list is serialized into snapshots verbatim, so its push
        // order must be a pure function of simulation state.
        let mut closing: Vec<(NodeId, NodeId)> =
            self.wrongful_open.keys().filter(|&&(a, b)| a == node || b == node).copied().collect();
        closing.sort_unstable_by_key(|&(a, b)| (a.0, b.0));
        for key in closing {
            let start = self.wrongful_open.remove(&key).expect("just listed");
            self.wrongful_durations.push(self.tick.saturating_sub(start));
        }
    }

    fn depart(&mut self, node: NodeId) {
        let freed = self.overlay.isolate(node);
        for peer in freed {
            self.defense.on_edge_removed(node, peer, 0, self.overlay.degree(peer));
        }
        self.close_wrongful_for(node);
        let s = &mut self.nodes[node.index()];
        s.online = false;
        s.rejoin_at = self.tick.saturating_add(self.cfg.rejoin_delay_ticks);
        self.defense.on_peer_reset(node);
    }

    /// Session-model departure: the peer leaves for good. A graceful leave
    /// lets neighbors purge everything keyed by the departed identity
    /// ([`Defense::on_peer_departed`]); a crash sends no goodbye — stale
    /// defense state about the dead address must be TTL-expired instead.
    /// Either way the slot enters the free list for a future arrival.
    fn depart_permanently(&mut self, node: NodeId) {
        let crash_fraction = self.cfg.session.as_ref().map_or(0.0, |s| s.crash_fraction);
        let crashed = self.rng_session.gen::<f64>() < crash_fraction;
        let freed = self.overlay.isolate(node);
        for peer in freed {
            self.defense.on_edge_removed(node, peer, 0, self.overlay.degree(peer));
        }
        self.close_wrongful_for(node);
        let s = &mut self.nodes[node.index()];
        s.online = false;
        s.rejoin_at = u32::MAX; // this incarnation never returns
        self.defense.on_peer_reset(node);
        if crashed {
            self.session_stats.crashes += 1;
        } else {
            self.session_stats.leaves += 1;
            self.defense.on_peer_departed(node);
        }
        self.free_slots.push(node.index());
    }

    /// Poisson arrivals of brand-new peers: each pops a free slot (recycling
    /// a permanently departed address) or grows the arena, up to the
    /// configured cap.
    fn session_arrivals(&mut self) {
        let Some(sess) = self.cfg.session.as_ref() else { return };
        let (rate, max_peers, lifetime_model) =
            (sess.arrival_rate_per_tick, sess.max_peers, sess.session_length);
        let arrivals = sample_poisson(&mut self.rng_session, rate);
        for _ in 0..arrivals {
            let slot = match self.free_slots.pop() {
                Some(slot) => {
                    // Recycled address: even after a crash (which sent no
                    // goodbye), the defense must shed every counter and
                    // verdict keyed by the previous incarnation before the
                    // newcomer takes the slot.
                    self.defense.on_peer_departed(NodeId::from_index(slot));
                    slot
                }
                None if self.nodes.len() < max_peers => self.grow_one_slot(),
                None => {
                    self.session_stats.joins_skipped += 1;
                    continue;
                }
            };
            let lifetime = lifetime_model.sample_minutes(&mut self.rng_session).max(1);
            self.spawn_peer(NodeId::from_index(slot), lifetime);
            self.session_stats.joins += 1;
        }
    }

    /// Grow every per-node structure by one slot; returns the new index.
    /// The bandwidth class is a placeholder — [`spawn_peer`](Self::spawn_peer)
    /// samples the real one.
    fn grow_one_slot(&mut self) -> usize {
        let node = self.overlay.add_node(ddp_workload::BandwidthClass::Cable);
        debug_assert_eq!(node.index(), self.nodes.len());
        self.nodes.push(NodeState::good(
            ddp_workload::BandwidthClass::Cable,
            self.cfg.good_capacity_qpm,
            1,
        ));
        self.node_used.push(0);
        self.online.push(true);
        self.capacity.push(self.cfg.good_capacity_qpm);
        self.prev_util.push(0.0);
        self.runs_defense.push(true);
        self.report_behavior.push(ReportBehavior::Honest);
        self.list_behavior.push(ListBehavior::Truthful);
        self.ever_cut.push(false);
        self.counted_wrongly_cut.push(false);
        self.flood.resize(self.nodes.len());
        self.defense.on_nodes_grown(self.nodes.len());
        self.session_stats.grown_slots += 1;
        node.index()
    }

    /// (Re)initialize `node` as a brand-new good peer from the session
    /// stream, then dial `join_degree` bootstrap connections honoring the
    /// defense's quarantine veto.
    fn spawn_peer(&mut self, node: NodeId, lifetime: u32) {
        let bw = self.cfg.bandwidth.sample(&mut self.rng_session);
        let capacity = sample_capacity(&self.cfg, &mut self.rng_session);
        self.nodes[node.index()] = NodeState::good(bw, capacity, lifetime);
        self.overlay.set_class(node, bw);
        self.catalog.regenerate_library(
            node,
            self.cfg.content.objects_per_peer,
            &mut self.rng_session,
        );
        self.prev_util[node.index()] = 0.0;
        self.ever_cut[node.index()] = false; // brand-new peer, clean record
        self.counted_wrongly_cut[node.index()] = false;
        self.defense.on_peer_reset(node);
        for _ in 0..self.cfg.join_degree {
            if let Some(peer) = self.pick_bootstrap_peer(node) {
                if self.overlay.add_edge(node, peer) {
                    self.defense.on_edge_added(
                        node,
                        peer,
                        self.overlay.degree(node),
                        self.overlay.degree(peer),
                    );
                    self.close_wrongful(node, peer);
                }
            }
        }
    }

    /// Record that the isolated attacker `node` will shed its identity once
    /// the dwell expires (idempotent across ticks).
    fn whitewash_schedule(&mut self, node: NodeId) {
        let Some(ww) = self.whitewash else { return };
        if self.whitewash_pending.iter().any(|&(slot, _)| slot == node.index()) {
            return;
        }
        self.whitewash_pending.push((node.index(), self.tick.saturating_add(ww.dwell_ticks)));
    }

    /// Execute due identity changes: the old slot goes dark forever; a
    /// freshly grown slot joins as an apparently ordinary newcomer, turns
    /// attacker, and (optionally) lies dormant through its quiet window.
    fn whitewash_rebirths(&mut self) {
        let Some(ww) = self.whitewash else { return };
        if self.whitewash_pending.is_empty() {
            return;
        }
        let tick = self.tick;
        let mut due: Vec<usize> = self
            .whitewash_pending
            .iter()
            .filter(|&&(_, at)| at <= tick)
            .map(|&(slot, _)| slot)
            .collect();
        self.whitewash_pending.retain(|&(_, at)| at > tick);
        due.sort_unstable(); // deterministic rebirth order
        for old_idx in due {
            let old = NodeId::from_index(old_idx);
            let Role::Attacker { rate_qpm, report } = self.nodes[old_idx].role else {
                continue;
            };
            // The old identity vanishes for good; its slot is never recycled
            // (a whitewasher does not hand its burned address back to the
            // bootstrap system).
            {
                let s = &mut self.nodes[old_idx];
                s.online = false;
                s.rejoin_at = u32::MAX;
            }
            self.defense.on_peer_reset(old);
            let new = NodeId::from_index(self.grow_one_slot());
            self.spawn_peer(new, 1); // lifetime irrelevant: attackers never leave
            let s = &mut self.nodes[new.index()];
            s.make_attacker(rate_qpm, report);
            s.dormant_until = tick.saturating_add(ww.quiet_ticks);
            self.whitewash_log.push(WhitewashRecord { tick, old, new });
        }
    }

    fn rejoin(&mut self, node: NodeId) {
        // The slot comes back as a brand-new peer.
        let bw = self.cfg.bandwidth.sample(&mut self.rng_churn);
        let lifetime = self.cfg.lifetime.sample_minutes(&mut self.rng_churn);
        let capacity = sample_capacity(&self.cfg, &mut self.rng_churn);
        let s = &mut self.nodes[node.index()];
        *s = NodeState::good(bw, capacity, lifetime);
        self.overlay.set_class(node, bw);
        self.catalog.regenerate_library(
            node,
            self.cfg.content.objects_per_peer,
            &mut self.rng_churn,
        );
        self.prev_util[node.index()] = 0.0;
        self.ever_cut[node.index()] = false; // brand-new peer, clean record
        self.counted_wrongly_cut[node.index()] = false;
        self.defense.on_peer_reset(node);
        for _ in 0..self.cfg.join_degree {
            if let Some(peer) = self.pick_online_peer(node) {
                if self.overlay.add_edge(node, peer) {
                    self.defense.on_edge_added(
                        node,
                        peer,
                        self.overlay.degree(node),
                        self.overlay.degree(peer),
                    );
                    self.close_wrongful(node, peer);
                }
            }
        }
    }

    fn try_reconnect_attacker(&mut self, node: NodeId) {
        let i = node.index();
        if self.nodes[i].defensively_isolated {
            // Identified and fully cut off: only the rejoin policy brings it
            // back ("no mechanism can prevent the DDoS Agent from joining
            // the system again", §3.7.2 — disabled by default to match the
            // paper's monotone damage decay).
            if self.tick < self.nodes[i].rejoin_at {
                return;
            }
            self.nodes[i].defensively_isolated = false;
            self.nodes[i].rejoin_at = u32::MAX;
        }
        // An agent whose last link vanished to neighbor churn re-dials (it
        // was never identified). Partially connected agents stay as they
        // are: the paper's agents "walk in" once and do not adaptively
        // re-provision links while under observation.
        if self.overlay.degree(node) > 0 {
            return;
        }
        while self.overlay.degree(node) < self.cfg.join_degree {
            match self.pick_online_peer(node) {
                Some(peer) => {
                    if self.overlay.add_edge(node, peer) {
                        self.defense.on_edge_added(
                            node,
                            peer,
                            self.overlay.degree(node),
                            self.overlay.degree(peer),
                        );
                        self.close_wrongful(node, peer);
                    } else {
                        break;
                    }
                }
                None => break,
            }
        }
    }

    fn maintain_connectivity(&mut self) {
        let session_on = self.cfg.session.is_some();
        for i in 0..self.nodes.len() {
            let node = NodeId::from_index(i);
            if !self.nodes[i].online || self.nodes[i].role.is_attacker() {
                continue;
            }
            while self.overlay.degree(node) < self.cfg.join_degree {
                let picked = if session_on {
                    // Open-membership repair honors the quarantine veto so
                    // self-healing cannot silently undo a defensive cut.
                    self.pick_bootstrap_peer(node)
                } else {
                    self.pick_online_peer(node)
                };
                match picked {
                    Some(peer) => {
                        if self.overlay.add_edge(node, peer) {
                            self.defense.on_edge_added(
                                node,
                                peer,
                                self.overlay.degree(node),
                                self.overlay.degree(peer),
                            );
                            self.close_wrongful(node, peer);
                        } else {
                            break; // already connected to the sampled peer
                        }
                    }
                    None => break,
                }
            }
        }
    }

    /// Sample a random *reachable* peer other than `not`: online and holding
    /// at least one connection. Joining peers learn candidates from host
    /// caches and other peers' neighbor lists, so a fully isolated peer
    /// (e.g. a disconnected DDoS agent) is not advertised anywhere — which
    /// realizes the paper's "queries issued by peer j will be isolated"
    /// containment. The joiner itself may of course be isolated.
    fn pick_online_peer(&mut self, not: NodeId) -> Option<NodeId> {
        let n = self.nodes.len();
        for _ in 0..32 {
            let i = self.rng_churn.gen_range(0..n);
            if i != not.index()
                && self.nodes[i].online
                && self.overlay.degree(NodeId::from_index(i)) > 0
            {
                return Some(NodeId::from_index(i));
            }
        }
        None
    }

    /// [`pick_online_peer`](Self::pick_online_peer) for the session-model
    /// paths: drawn from the session stream (so legacy-churn draws are
    /// untouched) and honoring the defense's quarantine veto — a bootstrap
    /// list would not advertise, and a defended peer would not accept, a
    /// pairing one side has quarantined or on probation.
    fn pick_bootstrap_peer(&mut self, not: NodeId) -> Option<NodeId> {
        let n = self.nodes.len();
        for _ in 0..32 {
            let i = self.rng_session.gen_range(0..n);
            let cand = NodeId::from_index(i);
            if i != not.index()
                && self.nodes[i].online
                && self.overlay.degree(cand) > 0
                && !self.defense.forbids_link(not, cand)
            {
                return Some(cand);
            }
        }
        None
    }

    fn build_emissions(&mut self) {
        self.emissions.clear();
        for i in 0..self.nodes.len() {
            if !self.nodes[i].online {
                continue;
            }
            let node = NodeId::from_index(i);
            match self.nodes[i].role {
                Role::Good => {
                    let k = self.cfg.arrivals.sample_tick(&mut self.rng_workload);
                    for _ in 0..k {
                        let object = self.catalog.sample_query_target(&mut self.rng_workload);
                        self.emissions.push(Emission::Good { origin: node, object });
                    }
                }
                Role::Attacker { rate_qpm, .. } => {
                    if self.tick < self.nodes[i].dormant_until {
                        // A whitewashed agent lying low through its quiet
                        // window emits nothing — indistinguishable from a
                        // silent newcomer.
                        continue;
                    }
                    // Distinct queries per link (Figure 1): one batch per
                    // adjacency slot; Q_d = min(rate, link) enforced by the
                    // flood's link budget.
                    for slot in 0..self.overlay.degree(node) {
                        self.emissions.push(Emission::Attack {
                            origin: node,
                            slot: slot as u32,
                            count: rate_qpm,
                        });
                    }
                }
            }
        }
        // Interleave good and attack traffic: under FIFO the arrival order
        // decides who gets the capacity.
        self.emissions.shuffle(&mut self.rng_workload);
    }

    fn execute_emissions(
        &mut self,
        traffic: &mut TrafficAccumulator,
        success: &mut SuccessStats,
        response: &mut ResponseStats,
    ) {
        let emissions = std::mem::take(&mut self.emissions);
        for &em in &emissions {
            let mut env = FloodEnv {
                node_used: &mut self.node_used,
                capacity: &self.capacity,
                online: &self.online,
                prev_util: &self.prev_util,
                traffic,
                policy: self.cfg.forwarding,
                fair_share_factor: self.cfg.fair_share_factor,
                hop_latency_secs: self.cfg.hop_latency_secs,
                proc_delay_secs: self.cfg.proc_delay_secs,
            };
            match em {
                Emission::Good { origin, object } => {
                    success.record_issued(1);
                    let out = self.flood.flood(
                        &mut self.overlay,
                        origin,
                        FirstHop::All { count: 1 },
                        self.cfg.ttl,
                        Some((&self.catalog, object)),
                        &mut env,
                    );
                    if out.found {
                        // Query out + hit back along the reverse path.
                        let rtt = 2.0 * out.hit_delay_secs;
                        if rtt <= self.cfg.response_timeout_secs {
                            success.record_success();
                            response.record(rtt);
                            self.response_p95.record(rtt);
                        }
                    }
                }
                Emission::Attack { origin, slot, count } => {
                    // The slot may have shifted if an edge was removed this
                    // tick; guard against stale indices.
                    if (slot as usize) < self.overlay.degree(origin) {
                        self.flood.flood(
                            &mut self.overlay,
                            origin,
                            FirstHop::Single { slot: slot as usize, count },
                            self.cfg.ttl,
                            None,
                            &mut env,
                        );
                    }
                }
            }
        }
        self.emissions = emissions;
    }

    /// Per-node traffic accounting: fold this tick's processed-query counts
    /// into utilization. Sharded across the worker pool — each partition
    /// writes a disjoint chunk of `prev_util`, so the result is positionally
    /// identical to the serial sweep at any thread count.
    fn update_utilization(&mut self) {
        let n = self.nodes.len();
        let part = Partition::even(n, self.threads);
        let shards = if self.threads > 1 && n > 1 { part.parts() } else { 0 };
        self.parallel_stats.record_tick(shards);
        let (node_used, capacity) = (&self.node_used, &self.capacity);
        crate::pool::run_chunked(
            self.threads,
            &mut self.prev_util,
            part.boundaries(),
            |start, chunk| {
                for (k, u) in chunk.iter_mut().enumerate() {
                    let i = start + k;
                    let cap = capacity[i].max(1);
                    *u = (node_used[i] as f32 / cap as f32).min(1.0);
                }
            },
        );
    }

    fn run_defense(&mut self, traffic: &mut TrafficAccumulator) {
        let mut actions = Actions::default();
        {
            let obs = TickObservation {
                tick: self.tick,
                overlay: &self.overlay,
                online: &self.online,
                runs_defense: &self.runs_defense,
                report_behavior: &self.report_behavior,
                list_behavior: &self.list_behavior,
                faults: Some(&self.fault_plane),
            };
            self.defense.on_tick(&obs, &mut actions);
        }
        traffic.control_msgs += actions.control_msgs;
        for t in actions.transitions {
            self.verdict_ledger.record(t);
        }
        for (observer, suspect) in actions.cuts {
            if !self.overlay.remove_edge(observer, suspect) {
                continue; // already gone (double cut within the tick)
            }
            self.defense.on_edge_removed(
                observer,
                suspect,
                self.overlay.degree(observer),
                self.overlay.degree(suspect),
            );
            self.ever_cut[suspect.index()] = true;
            self.cut_log.push(CutRecord {
                tick: self.tick,
                observer,
                suspect,
                suspect_was_attacker: self.nodes[suspect.index()].role.is_attacker(),
            });
            if self.nodes[suspect.index()].role.is_attacker() {
                self.attackers_cut += 1;
                if self.overlay.degree(suspect) == 0 {
                    self.nodes[suspect.index()].defensively_isolated = true;
                    self.nodes[suspect.index()].rejoin_at =
                        self.tick.saturating_add(self.cfg.attacker_rejoin_delay_ticks);
                }
            } else {
                self.good_peers_cut += 1;
                self.wrongful_open.entry((observer, suspect)).or_insert(self.tick);
                // "False negative is the number of good peers that are
                // wrongly disconnected" — count each peer once, however many
                // neighbors cut it.
                if !self.counted_wrongly_cut[suspect.index()] {
                    self.counted_wrongly_cut[suspect.index()] = true;
                    self.errors.record_good_peer_cut();
                }
            }
        }
        // Readmission probes re-dial after cuts are applied, so a cut and a
        // probe of the same pair in one tick nets out to "still severed".
        for (observer, suspect) in actions.reconnects {
            if !self.online[observer.index()] || !self.online[suspect.index()] {
                continue;
            }
            if self.overlay.add_edge(observer, suspect) {
                self.defense.on_edge_added(
                    observer,
                    suspect,
                    self.overlay.degree(observer),
                    self.overlay.degree(suspect),
                );
                self.close_wrongful(observer, suspect);
            }
        }
    }
}

impl Snapshottable for CutRecord {
    fn save(&self, enc: &mut Enc) {
        enc.u32(self.tick);
        enc.u32(self.observer.0);
        enc.u32(self.suspect.0);
        enc.bool(self.suspect_was_attacker);
    }

    fn load(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok(CutRecord {
            tick: dec.u32()?,
            observer: NodeId(dec.u32()?),
            suspect: NodeId(dec.u32()?),
            suspect_was_attacker: dec.bool()?,
        })
    }
}

fn save_rng(enc: &mut Enc, rng: &StdRng) {
    for w in rng.state() {
        enc.u64(w);
    }
}

fn load_rng(dec: &mut Dec<'_>) -> Result<StdRng, SnapshotError> {
    let mut s = [0u64; 4];
    for w in &mut s {
        *w = dec.u64()?;
    }
    Ok(StdRng::from_state(s))
}

/// Crash-safe checkpointing: serialize the complete engine state at a tick
/// boundary and rebuild a tick-for-tick byte-identical continuation from it.
///
/// A snapshot captures everything that persists across ticks — node states,
/// the overlay's adjacency arena *verbatim* (slot order is observable:
/// attack emissions index by slot), content libraries, the positions of every
/// RNG stream, the fault plane's in-flight mailboxes, whitewash/session
/// bookkeeping, all metrics accumulators, and the defense's own state via
/// [`Defense::save_state`]. Per-tick scratch (flood visited stamps, emission
/// buffers, the refreshed observation slices) is rebuilt to defaults: at a
/// tick boundary it is dead state, fully overwritten before the next read.
///
/// On any restore error the simulation may be partially overwritten and must
/// be discarded — callers rebuild via [`Simulation::new`] and retry or rerun.
impl<D: Defense> Simulation<D> {
    /// Fingerprint binding a snapshot to the run that wrote it: the full
    /// configuration (via its `Debug` rendering, which covers every field)
    /// and the master seed. Resuming under a different config or seed would
    /// silently diverge, so it is refused up front.
    fn context_fingerprint(&self) -> u64 {
        let text = format!("{:?}|seed={}", self.cfg, self.master_seed);
        ddp_snapshot::fnv1a64(text.as_bytes())
    }

    fn save_payload(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.u32(self.tick);
        enc.put(&self.nodes);
        // Adjacency rows verbatim: slot order and twin indices are observable
        // (attack emissions and counter mirrors are positional), so the rows
        // must survive byte-for-byte, never canonicalized.
        let n = self.nodes.len();
        enc.usize(n);
        for u in 0..n {
            let row = self.overlay.neighbors(NodeId::from_index(u));
            enc.usize(row.len());
            for h in row {
                enc.u32(h.peer.0);
                enc.u32(h.ridx);
            }
        }
        enc.put(&self.catalog.libraries().to_vec());
        save_rng(&mut enc, &self.rng_workload);
        save_rng(&mut enc, &self.rng_churn);
        save_rng(&mut enc, &self.rng_session);
        self.fault_plane.save_state(&mut enc);
        enc.put(&self.free_slots);
        enc.put(&self.session_stats);
        enc.put(&self.whitewash);
        enc.put(&self.whitewash_pending);
        enc.put(&self.whitewash_log);
        enc.put(&self.prev_util);
        enc.put(&self.series);
        enc.put(&self.errors);
        enc.u64(self.attackers_cut);
        enc.u64(self.good_peers_cut);
        enc.put(&self.ever_cut);
        enc.put(&self.counted_wrongly_cut);
        enc.put(&self.cut_log);
        enc.put(&self.verdict_ledger);
        // HashMap iteration order is nondeterministic; serialize sorted.
        let mut wrongful: Vec<((u32, u32), Tick)> =
            self.wrongful_open.iter().map(|(&(a, b), &t)| ((a.0, b.0), t)).collect();
        wrongful.sort_unstable();
        enc.usize(wrongful.len());
        for ((a, b), t) in wrongful {
            enc.u32(a);
            enc.u32(b);
            enc.u32(t);
        }
        enc.put(&self.wrongful_durations);
        enc.put(&self.response_p95);
        self.defense.save_state(&mut enc);
        enc.into_bytes()
    }

    fn restore_payload(&mut self, dec: &mut Dec<'_>) -> Result<(), SnapshotError> {
        let tick = dec.u32()?;
        let nodes: Vec<NodeState> = dec.get()?;
        let n = nodes.len();
        let row_count = dec.len("adjacency row count")?;
        if row_count != n {
            return Err(SnapshotError::Corrupt { what: "adjacency row count" });
        }
        let mut rows: Vec<Vec<Half>> = Vec::with_capacity(n);
        for _ in 0..n {
            let deg = dec.len("adjacency row")?;
            let mut row = Vec::with_capacity(deg);
            for _ in 0..deg {
                row.push(Half { peer: NodeId(dec.u32()?), ridx: dec.u32()? });
            }
            rows.push(row);
        }
        // Bounds-check every half before handing the rows to the arena, so
        // corrupt bytes surface as typed errors instead of index panics.
        for row in &rows {
            for h in row {
                if h.peer.index() >= n || rows[h.peer.index()].len() <= h.ridx as usize {
                    return Err(SnapshotError::Corrupt { what: "adjacency half out of bounds" });
                }
            }
        }
        let graph = DynamicGraph::from_rows(&rows);
        let classes: Vec<_> = nodes.iter().map(|s| s.bandwidth).collect();
        let overlay = Overlay::new(graph, &classes);
        overlay
            .check_invariants()
            .map_err(|_| SnapshotError::Corrupt { what: "overlay invariants" })?;
        let libraries: Vec<Vec<u32>> = dec.get()?;
        if libraries.len() != n {
            return Err(SnapshotError::Corrupt { what: "library count" });
        }
        let catalog = ContentCatalog::from_libraries(libraries, &self.cfg.content);
        let rng_workload = load_rng(dec)?;
        let rng_churn = load_rng(dec)?;
        let rng_session = load_rng(dec)?;
        self.fault_plane.restore_state(dec)?;
        let free_slots: Vec<usize> = dec.get()?;
        let session_stats: crate::session::SessionStats = dec.get()?;
        let whitewash: Option<crate::session::WhitewashConfig> = dec.get()?;
        let whitewash_pending: Vec<(usize, Tick)> = dec.get()?;
        let whitewash_log: Vec<crate::session::WhitewashRecord> = dec.get()?;
        let prev_util: Vec<f32> = dec.get()?;
        let series: RunSeries = dec.get()?;
        let errors: DetectionErrors = dec.get()?;
        let attackers_cut = dec.u64()?;
        let good_peers_cut = dec.u64()?;
        let ever_cut: Vec<bool> = dec.get()?;
        let counted_wrongly_cut: Vec<bool> = dec.get()?;
        if prev_util.len() != n || ever_cut.len() != n || counted_wrongly_cut.len() != n {
            return Err(SnapshotError::Corrupt { what: "per-node vector length" });
        }
        let cut_log: Vec<CutRecord> = dec.get()?;
        let verdict_ledger: VerdictLedger = dec.get()?;
        let wrongful_n = dec.len("wrongful_open")?;
        let mut wrongful_open = HashMap::with_capacity(wrongful_n);
        for _ in 0..wrongful_n {
            let a = NodeId(dec.u32()?);
            let b = NodeId(dec.u32()?);
            let t = dec.u32()?;
            wrongful_open.insert((a, b), t);
        }
        let wrongful_durations: Vec<u32> = dec.get()?;
        let response_p95: P2Quantile = dec.get()?;
        self.defense.restore_state(dec)?;

        self.tick = tick;
        self.nodes = nodes;
        self.overlay = overlay;
        self.catalog = catalog;
        self.flood = FloodEngine::new(n);
        self.rng_workload = rng_workload;
        self.rng_churn = rng_churn;
        self.rng_session = rng_session;
        self.free_slots = free_slots;
        self.session_stats = session_stats;
        self.whitewash = whitewash;
        self.whitewash_pending = whitewash_pending;
        self.whitewash_log = whitewash_log;
        self.prev_util = prev_util;
        self.series = series;
        self.errors = errors;
        self.attackers_cut = attackers_cut;
        self.good_peers_cut = good_peers_cut;
        self.ever_cut = ever_cut;
        self.counted_wrongly_cut = counted_wrongly_cut;
        self.cut_log = cut_log;
        self.verdict_ledger = verdict_ledger;
        self.wrongful_open = wrongful_open;
        self.wrongful_durations = wrongful_durations;
        self.response_p95 = response_p95;
        // Per-tick scratch: dead at a tick boundary, rebuilt to defaults and
        // fully refreshed before the next read.
        self.node_used = vec![0; n];
        self.online = vec![true; n];
        self.capacity = vec![0; n];
        self.runs_defense = vec![true; n];
        self.report_behavior = vec![ReportBehavior::Honest; n];
        self.list_behavior = vec![ListBehavior::Truthful; n];
        self.emissions.clear();
        Ok(())
    }

    /// Serialize the complete engine state into a self-validating container.
    ///
    /// Fails with [`SnapshotError::Unsupported`] when the active defense does
    /// not implement snapshot state — a checkpoint that silently omitted the
    /// defense would diverge on resume.
    pub fn save_snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        if !self.defense.snapshot_support() {
            return Err(SnapshotError::Unsupported {
                what: "active defense has no snapshot support",
            });
        }
        Ok(ddp_snapshot::encode_container(self.context_fingerprint(), &self.save_payload()))
    }

    /// Rebuild this simulation from [`save_snapshot`](Self::save_snapshot)
    /// bytes. `self` must have been built by [`Simulation::new`] with the
    /// same configuration and master seed as the writer (enforced via the
    /// context fingerprint). On error the simulation state is unspecified
    /// and must be discarded.
    pub fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let (context, payload) = ddp_snapshot::decode_container(bytes, Path::new("<memory>"))?;
        let expected = self.context_fingerprint();
        if context != expected {
            return Err(SnapshotError::ContextMismatch { expected, found: context });
        }
        let mut dec = Dec::new(&payload);
        self.restore_payload(&mut dec)?;
        dec.finish()
    }

    /// Write a checkpoint crash-safely (temp file + fsync + atomic rename).
    pub fn write_snapshot_file(&self, path: &Path) -> Result<(), SnapshotError> {
        if !self.defense.snapshot_support() {
            return Err(SnapshotError::Unsupported {
                what: "active defense has no snapshot support",
            });
        }
        ddp_snapshot::write_snapshot(path, self.context_fingerprint(), &self.save_payload())
    }

    /// Resume from a checkpoint written by
    /// [`write_snapshot_file`](Self::write_snapshot_file). Same contract as
    /// [`restore_snapshot`](Self::restore_snapshot).
    pub fn resume_from_file(&mut self, path: &Path) -> Result<(), SnapshotError> {
        let (context, payload) = ddp_snapshot::read_snapshot(path)?;
        let expected = self.context_fingerprint();
        if context != expected {
            return Err(SnapshotError::ContextMismatch { expected, found: context });
        }
        let mut dec = Dec::new(&payload);
        self.restore_payload(&mut dec)?;
        dec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defense::NoDefense;
    use ddp_topology::{TopologyConfig, TopologyModel};
    use ddp_workload::LifetimeModel;

    fn small_cfg(n: usize) -> SimConfig {
        SimConfig {
            topology: TopologyConfig { n, model: TopologyModel::BarabasiAlbert { m: 3 } },
            ..SimConfig::default()
        }
    }

    #[test]
    fn baseline_run_has_high_success_rate() {
        let cfg = small_cfg(300);
        let sim = Simulation::new(cfg, NoDefense, 7);
        let res = sim.run(10);
        assert_eq!(res.summary.ticks, 10);
        assert!(
            res.summary.success_rate_mean > 0.6,
            "unattacked success rate {} too low",
            res.summary.success_rate_mean
        );
        assert!(res.summary.response_time_mean_secs > 0.0);
        assert_eq!(res.summary.errors.false_positive, 0);
    }

    #[test]
    fn attack_degrades_success_and_raises_traffic() {
        let cfg = small_cfg(300);
        let baseline = Simulation::new(cfg.clone(), NoDefense, 7).run(10);

        let mut sim = Simulation::new(cfg, NoDefense, 7);
        for i in 0..10u32 {
            sim.make_attacker(NodeId(i * 13 + 1), ReportBehavior::Honest);
        }
        let attacked = sim.run(10);
        assert!(
            attacked.summary.success_rate_mean < baseline.summary.success_rate_mean,
            "attack should reduce success: {} vs {}",
            attacked.summary.success_rate_mean,
            baseline.summary.success_rate_mean
        );
        assert!(
            attacked.summary.traffic_per_tick > 2.0 * baseline.summary.traffic_per_tick,
            "attack should multiply traffic: {} vs {}",
            attacked.summary.traffic_per_tick,
            baseline.summary.traffic_per_tick
        );
        // Attackers were never disconnected: all are terminal false positives.
        assert_eq!(attacked.summary.errors.false_positive, 10);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = Simulation::new(small_cfg(200), NoDefense, 99).run(6);
        let b = Simulation::new(small_cfg(200), NoDefense, 99).run(6);
        assert_eq!(a.series.success_rate, b.series.success_rate);
        assert_eq!(a.series.traffic, b.series.traffic);
        let c = Simulation::new(small_cfg(200), NoDefense, 100).run(6);
        assert_ne!(a.series.traffic, c.series.traffic, "different seed, different run");
    }

    #[test]
    fn churn_departs_and_rejoins_peers() {
        let mut cfg = small_cfg(120);
        cfg.lifetime = LifetimeModel::Exponential { mean_min: 3.0 };
        let mut sim = Simulation::new(cfg, NoDefense, 5);
        let mut saw_offline = false;
        for _ in 0..12 {
            sim.step();
            if (0..120).any(|i| !sim.is_online(NodeId(i))) {
                saw_offline = true;
            }
        }
        assert!(saw_offline, "with 3-minute lifetimes someone must churn in 12 ticks");
        // The overlay must remain usable: the steady-state offline fraction
        // is rejoin_delay / (lifetime + rejoin_delay) = 1/4 here.
        let online = (0..120).filter(|&i| sim.is_online(NodeId(i))).count();
        assert!(online > 70, "most peers online, got {online}");
        sim.overlay().check_invariants().unwrap();
    }

    #[test]
    fn no_churn_keeps_everyone_online() {
        let mut cfg = small_cfg(100);
        cfg.churn = false;
        let mut sim = Simulation::new(cfg, NoDefense, 5);
        for _ in 0..8 {
            sim.step();
        }
        assert!((0..100).all(|i| sim.is_online(NodeId(i))));
    }

    /// A defense that cuts every neighbor of node 0 — exercises the cut
    /// bookkeeping and attacker-reconnect paths.
    struct CutEverything;
    impl Defense for CutEverything {
        fn name(&self) -> &'static str {
            "cut-everything"
        }
        fn on_tick(&mut self, obs: &TickObservation<'_>, actions: &mut Actions) {
            let victims: Vec<_> = obs.overlay.neighbors(NodeId(0)).iter().map(|h| h.peer).collect();
            for v in victims {
                actions.cut(NodeId(0), v);
            }
            actions.control_msgs += 3;
        }
    }

    #[test]
    fn cuts_are_applied_and_counted() {
        let mut cfg = small_cfg(100);
        cfg.churn = false;
        let mut sim = Simulation::new(cfg, CutEverything, 11);
        sim.make_attacker(NodeId(50), ReportBehavior::Honest);
        sim.step();
        // Node 0's neighbors are (almost surely) good peers: cuts counted as
        // good-peer cuts -> paper's false negatives.
        let res = sim.run(2);
        assert!(res.summary.good_peers_cut > 0);
        assert!(res.summary.errors.false_negative > 0);
        assert!(res.summary.control_per_tick > 0.0);
    }

    #[test]
    fn wrongful_interval_keys_are_node_ids_closing_both_orientations() {
        let mut cfg = small_cfg(60);
        cfg.churn = false;
        let mut sim = Simulation::new(cfg, NoDefense, 3);
        sim.tick = 7;
        sim.wrongful_open.insert((NodeId(1), NodeId(2)), 4);
        sim.wrongful_open.insert((NodeId(5), NodeId(6)), 2);
        // A re-link observed in the opposite orientation must still close the
        // interval: the map is keyed by node identity, both directions probed.
        sim.close_wrongful(NodeId(2), NodeId(1));
        assert_eq!(sim.wrongful_durations, vec![3]);
        // A departing endpoint censors its intervals — the churn path.
        sim.close_wrongful_for(NodeId(6));
        assert_eq!(sim.wrongful_durations, vec![3, 5]);
        assert!(sim.wrongful_open.is_empty());
    }

    #[test]
    fn wrongful_intervals_survive_churn() {
        // CutEverything wrongly cuts good peers every tick while churn
        // departs and rejoins them; every opened interval must close (on
        // re-link or departure) or be censored at run end — never lost, never
        // longer than the run.
        let mut cfg = small_cfg(100);
        cfg.lifetime = LifetimeModel::Exponential { mean_min: 3.0 };
        let sim = Simulation::new(cfg, CutEverything, 17);
        let res = sim.run(10);
        let v = &res.summary.verdicts;
        assert!(res.summary.good_peers_cut > 0);
        assert!(v.wrongful_cuts > 0, "wrongful cuts must be measured under churn");
        assert!(
            v.wrongful_cut_ticks_mean <= 10.0,
            "durations are bounded by the run length, got mean {}",
            v.wrongful_cut_ticks_mean
        );
    }

    #[test]
    fn attacker_reconnects_after_isolation() {
        let mut cfg = small_cfg(60);
        cfg.churn = false;
        cfg.attacker_rejoin_delay_ticks = 1;
        let mut sim = Simulation::new(cfg, NoDefense, 3);
        sim.make_attacker(NodeId(7), ReportBehavior::Honest);
        // Manually isolate the attacker via the overlay: simulate a cut.
        // (Use the engine path: a custom defense would do this; here we
        // check the reconnect logic directly.)
        let peers: Vec<_> = sim.overlay().neighbors(NodeId(7)).iter().map(|h| h.peer).collect();
        for _p in peers {
            // remove through engine-internal API is private; emulate by
            // stepping with a cutting defense instead.
        }
        // Simplest: run a few ticks; the attacker stays connected (degree>0).
        for _ in 0..3 {
            sim.step();
        }
        assert!(sim.overlay().degree(NodeId(7)) > 0);
    }

    #[test]
    fn huge_rejoin_delay_saturates_instead_of_overflowing() {
        // rejoin_at = tick + delay must clamp, not wrap (a wrapped schedule
        // would resurrect the peer immediately).
        let mut cfg = small_cfg(80);
        cfg.lifetime = LifetimeModel::Exponential { mean_min: 1.0 };
        cfg.rejoin_delay_ticks = u32::MAX;
        let mut sim = Simulation::new(cfg, NoDefense, 9);
        for _ in 0..5 {
            sim.step();
        }
        let offline = (0..80).filter(|&i| !sim.is_online(NodeId(i))).count();
        assert!(offline > 0, "1-minute lifetimes must drive departures");
        // Nobody scheduled at u32::MAX ever returns.
        for i in 0..80u32 {
            if !sim.is_online(NodeId(i)) {
                assert_eq!(sim.nodes[i as usize].rejoin_at, u32::MAX);
            }
        }
    }

    #[test]
    fn session_model_sustains_population_with_fresh_arrivals() {
        use crate::session::SessionConfig;
        let mut cfg = small_cfg(120);
        cfg.session = Some(SessionConfig::steady_state(120, 4.0));
        let mut sim = Simulation::new(cfg, NoDefense, 21);
        for _ in 0..15 {
            sim.step();
            sim.overlay().check_invariants().unwrap();
        }
        let stats = sim.session_stats();
        assert!(stats.joins > 0, "arrivals must occur");
        assert!(stats.leaves + stats.crashes > 0, "departures must occur");
        assert!(stats.crashes > 0, "a 0.25 crash fraction must crash someone in 15 ticks");
        let online =
            (0..sim.node_count()).filter(|&i| sim.is_online(NodeId::from_index(i))).count();
        assert!(
            (60..=240).contains(&online),
            "steady-state arrivals should hold the population near 120, got {online}"
        );
        // Departed slots recycle before the arena grows past the cap.
        assert!(sim.node_count() <= 240);
    }

    #[test]
    fn session_zero_arrivals_drains_the_overlay() {
        use crate::session::SessionConfig;
        let mut cfg = small_cfg(100);
        cfg.session = Some(SessionConfig {
            arrival_rate_per_tick: 0.0,
            ..SessionConfig::steady_state(100, 2.0)
        });
        let mut sim = Simulation::new(cfg, NoDefense, 33);
        for _ in 0..14 {
            sim.step();
        }
        let online =
            (0..sim.node_count()).filter(|&i| sim.is_online(NodeId::from_index(i))).count();
        assert!(online < 40, "2-tick sessions with no arrivals must drain, got {online}");
        assert_eq!(sim.session_stats().joins, 0);
        sim.overlay().check_invariants().unwrap();
    }

    #[test]
    fn inert_session_model_reproduces_the_legacy_run() {
        // Churn rate 0: a session model that never fires (no arrivals, no
        // departures) must be tick-for-tick identical to session: None.
        use crate::session::SessionConfig;
        let mut cfg = small_cfg(150);
        cfg.churn = false;
        cfg.lifetime = LifetimeModel::Immortal;
        let legacy = Simulation::new(cfg.clone(), NoDefense, 77).run(8);
        cfg.session = Some(SessionConfig {
            arrival_rate_per_tick: 0.0,
            ..SessionConfig::steady_state(150, 10.0)
        });
        let sessioned = Simulation::new(cfg, NoDefense, 77).run(8);
        assert_eq!(legacy.series.success_rate, sessioned.series.success_rate);
        assert_eq!(legacy.series.traffic, sessioned.series.traffic);
        assert_eq!(legacy.summary, sessioned.summary);
    }

    /// Cuts every link of one ground-truth target each tick — drives the
    /// target to defensive isolation without a real detection protocol.
    struct CutTarget(NodeId);
    impl Defense for CutTarget {
        fn name(&self) -> &'static str {
            "cut-target"
        }
        fn on_tick(&mut self, obs: &TickObservation<'_>, actions: &mut Actions) {
            let peers: Vec<_> = obs.overlay.neighbors(self.0).iter().map(|h| h.peer).collect();
            for p in peers {
                actions.cut(p, self.0);
            }
        }
    }

    #[test]
    fn whitewash_rebirth_grows_a_fresh_identity() {
        let mut cfg = small_cfg(80);
        cfg.churn = false;
        let initial_n = cfg.peers();
        let mut sim = Simulation::new(cfg, CutTarget(NodeId(7)), 13);
        sim.make_attacker(NodeId(7), ReportBehavior::Honest);
        sim.enable_whitewash(WhitewashConfig { dwell_ticks: 1, quiet_ticks: 2 });
        for _ in 0..6 {
            sim.step();
            sim.overlay().check_invariants().unwrap();
        }
        let log = sim.whitewash_log().to_vec();
        assert_eq!(log.len(), 1, "the cut agent must be reborn exactly once");
        let rec = log[0];
        assert_eq!(rec.old, NodeId(7));
        assert!(rec.new.index() >= initial_n, "rebirth must use a freshly grown slot");
        assert!(!sim.is_online(rec.old), "the burned identity stays dark");
        assert!(sim.is_online(rec.new));
        assert!(sim.role(rec.new).is_attacker());
        assert!(sim.overlay().degree(rec.new) > 0, "the newcomer re-dialed bootstrap links");
        assert_eq!(sim.nodes[rec.new.index()].dormant_until, rec.tick + 2);
        assert_eq!(sim.node_count(), initial_n + 1);
    }

    /// Build a stressful scenario: churn, faults, attackers, whitewash.
    fn busy_sim(seed: u64) -> Simulation<NoDefense> {
        let mut cfg = small_cfg(150);
        cfg.lifetime = LifetimeModel::Exponential { mean_min: 5.0 };
        cfg.faults =
            crate::FaultConfig { loss: 0.1, delay_prob: 0.2, delay_ticks: 2, crash_prob: 0.01 };
        let mut sim = Simulation::new(cfg, NoDefense, seed);
        for i in 0..8u32 {
            sim.make_attacker(NodeId(i * 17 + 2), ReportBehavior::Honest);
        }
        sim.enable_whitewash(WhitewashConfig { dwell_ticks: 2, quiet_ticks: 1 });
        sim
    }

    #[test]
    fn snapshot_resume_is_tick_for_tick_identical() {
        let mut reference = busy_sim(123);
        for _ in 0..12 {
            reference.step();
        }

        let mut writer = busy_sim(123);
        for _ in 0..5 {
            writer.step();
        }
        let bytes = writer.save_snapshot().unwrap();
        let mut resumed = busy_sim(123);
        resumed.restore_snapshot(&bytes).unwrap();
        assert_eq!(resumed.tick(), 5);
        for _ in 0..7 {
            resumed.step();
        }

        let a = reference.finish();
        let b = resumed.finish();
        assert_eq!(a.series, b.series);
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.cut_log, b.cut_log);
    }

    #[test]
    fn snapshot_rejects_mismatched_run_identity() {
        let mut writer = busy_sim(123);
        writer.step();
        let bytes = writer.save_snapshot().unwrap();
        // Different seed: same config, different run — must be refused.
        let mut other = busy_sim(124);
        match other.restore_snapshot(&bytes) {
            Err(SnapshotError::ContextMismatch { .. }) => {}
            other => panic!("expected ContextMismatch, got {other:?}"),
        }
        // Different config likewise.
        let mut cfg_changed = Simulation::new(small_cfg(151), NoDefense, 123);
        match cfg_changed.restore_snapshot(&bytes) {
            Err(SnapshotError::ContextMismatch { .. }) => {}
            other => panic!("expected ContextMismatch, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_snapshot_bytes_are_typed_errors_not_panics() {
        let mut writer = busy_sim(9);
        for _ in 0..3 {
            writer.step();
        }
        let bytes = writer.save_snapshot().unwrap();
        // Every truncation of the container must fail cleanly.
        for cut in [0, 10, bytes.len() / 2, bytes.len() - 1] {
            let mut sim = busy_sim(9);
            assert!(sim.restore_snapshot(&bytes[..cut]).is_err());
        }
        // A bit flip anywhere must be rejected (checksum or typed decode).
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        let mut sim = busy_sim(9);
        assert!(sim.restore_snapshot(&flipped).is_err());
    }

    #[test]
    fn dormant_attackers_emit_no_flood_traffic() {
        let mut cfg = small_cfg(100);
        cfg.churn = false;
        let mut active = Simulation::new(cfg.clone(), NoDefense, 41);
        active.make_attacker(NodeId(9), ReportBehavior::Honest);
        let mut dormant = Simulation::new(cfg, NoDefense, 41);
        dormant.make_attacker(NodeId(9), ReportBehavior::Honest);
        dormant.nodes[9].dormant_until = u32::MAX;
        let a = active.run(4);
        let d = dormant.run(4);
        assert!(
            d.summary.traffic_per_tick < a.summary.traffic_per_tick / 2.0,
            "dormant agent must not flood: {} vs {}",
            d.summary.traffic_per_tick,
            a.summary.traffic_per_tick
        );
    }
}
