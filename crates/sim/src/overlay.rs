//! The live overlay: dynamic graph + per-directed-edge traffic counters.
//!
//! DD-POLICE's raw input is `Out_query(i)` / `In_query(i)` — per-minute,
//! per-neighbor query counts (§3.2). The overlay keeps one `[sent, accepted]`
//! counter pair per *directed half-edge*, stored positionally alongside the
//! adjacency list, so the flooding hot loop updates them without hashing and
//! the defense reads `Q_{u→v}` in O(1) through the reciprocal index.
//!
//! The pairs live in a flat [`SegVec`] arena mirroring the graph's adjacency
//! arena row-for-row and slot-for-slot: every structural mutation replays the
//! same `push`/`swap_remove` sequence on the counter rows, so the positional
//! mirror survives arbitrary churn. Interleaving `sent` and `accepted` in one
//! `[u32; 2]` cell halves the number of row lookups in the flood kernel —
//! `record_send` + `record_accept` for one edge touch one cache line.

use ddp_topology::{DynamicGraph, Half, NodeId, SegVec};
use ddp_workload::{BandwidthClass, BandwidthModel};

const CLASSES: [BandwidthClass; 4] =
    [BandwidthClass::Dialup, BandwidthClass::Dsl, BandwidthClass::Cable, BandwidthClass::Ethernet];

/// `counters[u][slot][SENT]`: queries sent on the wire from `u` to
/// `neighbors(u)[slot]` this tick (bandwidth accounting).
pub(crate) const SENT: usize = 0;
/// `counters[u][slot][ACCEPTED]`: queries from `u` the neighbor accepted as
/// *fresh* (first arrival, duplicates excluded) this tick. These are the
/// `Out_query`/`In_query` volumes DD-POLICE's Definitions 2.1–2.3 are written
/// for — the paper's §2.2 no-duplication model counts each query on an edge at
/// most once, and a receiver-side counter naturally filters duplicates through
/// its seen-GUID table.
pub(crate) const ACCEPTED: usize = 1;

fn class_index(c: BandwidthClass) -> usize {
    match c {
        BandwidthClass::Dialup => 0,
        BandwidthClass::Dsl => 1,
        BandwidthClass::Cable => 2,
        BandwidthClass::Ethernet => 3,
    }
}

/// The overlay the simulation runs on.
#[derive(Debug, Clone)]
pub struct Overlay {
    graph: DynamicGraph,
    /// Per-directed-half-edge `[sent, accepted]` pairs, positionally mirroring
    /// `graph`'s adjacency rows (see [`SENT`] / [`ACCEPTED`]).
    counters: SegVec<[u32; 2]>,
    /// Per-node bandwidth class index into the capacity table.
    class_idx: Vec<u8>,
    /// `cap[sender class][receiver class]` in queries/min.
    cap_table: [[u32; 4]; 4],
}

impl Overlay {
    /// Wrap a generated graph; `classes` gives each node's bandwidth class.
    pub fn new(graph: DynamicGraph, classes: &[BandwidthClass]) -> Self {
        assert_eq!(graph.node_count(), classes.len());
        let lens: Vec<usize> =
            (0..graph.node_count()).map(|u| graph.degree(NodeId::from_index(u))).collect();
        let counters = SegVec::from_lens(&lens, [0, 0]);
        let mut cap_table = [[0u32; 4]; 4];
        for (i, &a) in CLASSES.iter().enumerate() {
            for (j, &b) in CLASSES.iter().enumerate() {
                cap_table[i][j] = BandwidthModel::link_capacity_qpm(a, b);
            }
        }
        let class_idx = classes.iter().map(|&c| class_index(c) as u8).collect();
        Overlay { graph, counters, class_idx, cap_table }
    }

    /// Number of node slots.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Append a fresh, degree-zero node slot with the given bandwidth class
    /// (the session-model join path). The counter arena grows an empty row in
    /// lockstep with the adjacency arena. Returns the new node's id.
    pub fn add_node(&mut self, class: BandwidthClass) -> NodeId {
        let id = self.graph.add_node();
        self.counters.push_row();
        self.class_idx.push(class_index(class) as u8);
        id
    }

    /// Number of live undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Adjacency of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[Half] {
        self.graph.neighbors(u)
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.graph.degree(u)
    }

    /// Whether `{u, v}` is a live connection.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.graph.contains_edge(u, v)
    }

    /// Update a node's bandwidth class (when a slot rejoins as a new peer).
    pub fn set_class(&mut self, u: NodeId, class: BandwidthClass) {
        self.class_idx[u.index()] = class_index(class) as u8;
    }

    /// Bandwidth class of `u`.
    pub fn class_of(&self, u: NodeId) -> BandwidthClass {
        CLASSES[self.class_idx[u.index()] as usize]
    }

    /// Capacity in queries/min of the directed link `u → v`.
    #[inline]
    pub fn link_capacity(&self, u: NodeId, v: NodeId) -> u32 {
        self.cap_table[self.class_idx[u.index()] as usize][self.class_idx[v.index()] as usize]
    }

    /// Connect `u` and `v`. Returns false if already connected or `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if !self.graph.add_edge(u, v) {
            return false;
        }
        self.counters.push(u.index(), [0, 0]);
        self.counters.push(v.index(), [0, 0]);
        true
    }

    /// Disconnect `u` and `v`. Returns false if not connected.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let Some(slot) = self.graph.slot_of(u, v) else { return false };
        let ridx = self.graph.neighbors(u)[slot].ridx as usize;
        self.graph.remove_edge_at(u, slot);
        // Mirror the two swap_removes, same slot evolution as DynamicGraph.
        self.counters.swap_remove(v.index(), ridx);
        self.counters.swap_remove(u.index(), slot);
        true
    }

    /// Remove all edges of `u` (departure). Returns the freed peers.
    pub fn isolate(&mut self, u: NodeId) -> Vec<NodeId> {
        let mut freed = Vec::with_capacity(self.degree(u));
        while self.degree(u) > 0 {
            let slot = self.degree(u) - 1;
            let peer = self.graph.neighbors(u)[slot].peer;
            self.remove_edge_at_slot(u, slot);
            freed.push(peer);
        }
        freed
    }

    fn remove_edge_at_slot(&mut self, u: NodeId, slot: usize) {
        let ridx = self.graph.neighbors(u)[slot].ridx as usize;
        let peer = self.graph.neighbors(u)[slot].peer;
        self.graph.remove_edge_at(u, slot);
        self.counters.swap_remove(peer.index(), ridx);
        self.counters.swap_remove(u.index(), slot);
    }

    /// Zero all per-tick counters (single `memset` over the flat arena).
    pub fn reset_tick_counters(&mut self) {
        self.counters.fill_all([0, 0]);
    }

    /// Record `c` queries sent from `u` via adjacency `slot`.
    #[inline]
    pub fn record_send(&mut self, u: NodeId, slot: usize, c: u32) {
        self.counters.slice_mut(u.index())[slot][SENT] += c;
    }

    /// Queries sent from `u` via adjacency `slot` this tick.
    #[inline]
    pub fn sent_via(&self, u: NodeId, slot: usize) -> u32 {
        self.counters.get(u.index(), slot)[SENT]
    }

    /// Queries sent from `u` to `v` this tick (O(deg) slot lookup), or 0 if
    /// not connected.
    pub fn sent_between(&self, u: NodeId, v: NodeId) -> u32 {
        self.graph.slot_of(u, v).map_or(0, |s| self.sent_via(u, s))
    }

    /// Record `c` queries from `u` via `slot` accepted fresh by the receiver.
    #[inline]
    pub fn record_accept(&mut self, u: NodeId, slot: usize, c: u32) {
        self.counters.slice_mut(u.index())[slot][ACCEPTED] += c;
    }

    /// Dup-filtered queries from `u` via adjacency `slot` this tick — the
    /// `Q_{u→v}` volume of Definitions 2.1–2.3.
    #[inline]
    pub fn accepted_via(&self, u: NodeId, slot: usize) -> u32 {
        self.counters.get(u.index(), slot)[ACCEPTED]
    }

    /// Dup-filtered queries from `u` to `v` this tick (O(deg) slot lookup).
    pub fn accepted_between(&self, u: NodeId, v: NodeId) -> u32 {
        self.graph.slot_of(u, v).map_or(0, |s| self.accepted_via(u, s))
    }

    /// Total queries `u` sent this tick (its `Out` volume over all links).
    pub fn total_sent(&self, u: NodeId) -> u64 {
        self.counters.slice(u.index()).iter().map(|c| c[SENT] as u64).sum()
    }

    /// Total queries `u` received this tick (its `In` volume), via twins.
    pub fn total_received(&self, u: NodeId) -> u64 {
        self.graph
            .neighbors(u)
            .iter()
            .map(|h| self.counters.get(h.peer.index(), h.ridx as usize)[SENT] as u64)
            .sum()
    }

    /// Split-borrow for the flood kernel: read-only graph + class/capacity
    /// tables alongside the mutable counter arena, so the hot loop can hold a
    /// neighbor slice and a counter row simultaneously.
    #[allow(clippy::type_complexity)]
    #[inline]
    pub(crate) fn flood_parts(
        &mut self,
    ) -> (&DynamicGraph, &mut SegVec<[u32; 2]>, &[u8], &[[u32; 4]; 4]) {
        let Overlay { graph, counters, class_idx, cap_table } = self;
        (graph, counters, class_idx.as_slice(), cap_table)
    }

    /// Verify the mirror stays aligned with the adjacency (tests).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.graph.check_invariants()?;
        for u in 0..self.node_count() {
            if self.counters.len_of(u) != self.graph.degree(NodeId::from_index(u)) {
                return Err(format!(
                    "counter mirror misaligned at node {u}: {} counters, degree {}",
                    self.counters.len_of(u),
                    self.graph.degree(NodeId::from_index(u))
                ));
            }
        }
        Ok(())
    }

    /// Access the underlying graph (read-only).
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overlay(n: usize, edges: &[(u32, u32)]) -> Overlay {
        let mut g = DynamicGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        Overlay::new(g, &vec![BandwidthClass::Ethernet; n])
    }

    #[test]
    fn counters_track_sends_in_both_directions() {
        let mut o = overlay(3, &[(0, 1), (1, 2)]);
        // node1 -> node0 lives at some slot of node 1.
        let slot = o.graph().slot_of(NodeId(1), NodeId(0)).unwrap();
        o.record_send(NodeId(1), slot, 500);
        assert_eq!(o.sent_between(NodeId(1), NodeId(0)), 500);
        assert_eq!(o.sent_between(NodeId(0), NodeId(1)), 0);
        assert_eq!(o.total_sent(NodeId(1)), 500);
        assert_eq!(o.total_received(NodeId(0)), 500);
        o.reset_tick_counters();
        assert_eq!(o.sent_between(NodeId(1), NodeId(0)), 0);
    }

    #[test]
    fn mirror_survives_edge_removal_with_swap() {
        let mut o = overlay(4, &[(0, 1), (0, 2), (0, 3)]);
        let s1 = o.graph().slot_of(NodeId(0), NodeId(1)).unwrap();
        let s3 = o.graph().slot_of(NodeId(0), NodeId(3)).unwrap();
        o.record_send(NodeId(0), s1, 11);
        o.record_send(NodeId(0), s3, 33);
        assert!(o.remove_edge(NodeId(0), NodeId(1)));
        o.check_invariants().unwrap();
        // Counter for 0->3 must have survived the swap_remove.
        assert_eq!(o.sent_between(NodeId(0), NodeId(3)), 33);
        assert_eq!(o.sent_between(NodeId(0), NodeId(2)), 0);
    }

    #[test]
    fn isolate_clears_counters_alignment() {
        let mut o = overlay(5, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let freed = o.isolate(NodeId(0));
        assert_eq!(freed.len(), 3);
        o.check_invariants().unwrap();
        assert_eq!(o.edge_count(), 1);
        assert_eq!(o.total_received(NodeId(1)), 0);
    }

    #[test]
    fn add_node_grows_an_empty_aligned_row() {
        let mut o = overlay(3, &[(0, 1), (1, 2)]);
        let id = o.add_node(BandwidthClass::Dialup);
        assert_eq!(id, NodeId(3));
        assert_eq!(o.node_count(), 4);
        assert_eq!(o.degree(id), 0);
        assert_eq!(o.class_of(id), BandwidthClass::Dialup);
        o.check_invariants().unwrap();
        // The new slot participates in normal edge life immediately.
        assert!(o.add_edge(id, NodeId(0)));
        let slot = o.graph().slot_of(id, NodeId(0)).unwrap();
        o.record_send(id, slot, 9);
        assert_eq!(o.total_received(NodeId(0)), 9);
        o.check_invariants().unwrap();
    }

    #[test]
    fn add_edge_extends_mirror() {
        let mut o = overlay(3, &[]);
        assert!(o.add_edge(NodeId(0), NodeId(2)));
        assert!(!o.add_edge(NodeId(0), NodeId(2)));
        o.check_invariants().unwrap();
        let slot = o.graph().slot_of(NodeId(0), NodeId(2)).unwrap();
        o.record_send(NodeId(0), slot, 7);
        assert_eq!(o.total_received(NodeId(2)), 7);
    }

    #[test]
    fn link_capacity_uses_class_table() {
        let mut g = DynamicGraph::new(2);
        g.add_edge(NodeId(0), NodeId(1));
        let o = Overlay::new(g, &[BandwidthClass::Dialup, BandwidthClass::Ethernet]);
        assert_eq!(
            o.link_capacity(NodeId(0), NodeId(1)),
            BandwidthModel::link_capacity_qpm(BandwidthClass::Dialup, BandwidthClass::Ethernet)
        );
        // Asymmetric: ethernet -> dialup binds on dialup's downstream.
        assert_eq!(
            o.link_capacity(NodeId(1), NodeId(0)),
            BandwidthModel::link_capacity_qpm(BandwidthClass::Ethernet, BandwidthClass::Dialup)
        );
    }

    #[test]
    fn set_class_changes_capacity() {
        let mut o = overlay(2, &[(0, 1)]);
        let before = o.link_capacity(NodeId(0), NodeId(1));
        o.set_class(NodeId(0), BandwidthClass::Dialup);
        let after = o.link_capacity(NodeId(0), NodeId(1));
        assert!(after < before);
        assert_eq!(o.class_of(NodeId(0)), BandwidthClass::Dialup);
    }

    #[test]
    fn interleaved_pairs_mirror_graph_under_churn() {
        // Grow, count, churn, and verify counters stay slot-aligned while the
        // flat arena relocates rows underneath.
        let mut o = overlay(8, &[]);
        for u in 0..8u32 {
            for d in 1..4u32 {
                o.add_edge(NodeId(u), NodeId((u + d) % 8));
            }
        }
        o.check_invariants().unwrap();
        for u in 0..8u32 {
            for slot in 0..o.degree(NodeId(u)) {
                o.record_send(NodeId(u), slot, u * 10 + slot as u32);
                o.record_accept(NodeId(u), slot, 1);
            }
        }
        let before = o.sent_between(NodeId(2), NodeId(3));
        o.isolate(NodeId(0));
        o.check_invariants().unwrap();
        assert_eq!(o.sent_between(NodeId(2), NodeId(3)), before);
        assert_eq!(o.accepted_between(NodeId(2), NodeId(3)), 1);
    }
}
