//! Scoped worker pool for the deterministic parallel tick engine.
//!
//! One primitive, [`run_partitioned`]: fan a fixed list of independent work
//! items (partitions of the peer range) over `threads` scoped OS threads and
//! return the results **in item order**, regardless of which worker computed
//! what or when it finished. Determinism never rests on scheduling: workers
//! claim items from a shared atomic counter (the only synchronization
//! besides the scope join), tag every result with its item index, and the
//! caller-visible output is re-assembled by tag.
//!
//! The pool is spun up per parallel region rather than kept alive across
//! ticks: `std::thread::scope` lets workers borrow the tick's frozen state
//! directly (no `Arc`, no channels), and thread spawn cost is far below one
//! tick's work at the scales where parallelism is worth having. With
//! `threads <= 1`, or a single item, everything runs inline on the caller's
//! thread — byte-identical by construction, and the path every existing
//! serial test exercises.
//!
//! The `pool-audit` feature gates a stress suite sized for `cargo miri`
//! (exhaustively checked handoff, small iteration counts) so CI can audit
//! the claiming protocol under the interpreter when miri is available.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f(item)` for every `item in 0..items` across up to `threads` scoped
/// worker threads, returning the results in item order.
///
/// `f` must be safe to call concurrently from multiple threads (`Sync`); the
/// per-item work must be independent — nothing here orders side effects
/// *between* items, only the returned values.
pub fn run_partitioned<R, F>(threads: usize, items: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || items <= 1 {
        return (0..items).map(f).collect();
    }
    let workers = threads.min(items);
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut mine: Vec<(usize, R)> = Vec::new();
                loop {
                    let item = next.fetch_add(1, Ordering::Relaxed);
                    if item >= items {
                        break;
                    }
                    mine.push((item, f(item)));
                }
                mine
            }));
        }
        for h in handles {
            // A panicking worker propagates here, after the scope has joined
            // every sibling — no half-merged tick can escape.
            tagged.extend(h.join().expect("worker panicked"));
        }
    });
    debug_assert_eq!(tagged.len(), items);
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Run `f(start, chunk)` over disjoint mutable chunks of `data`, split at
/// `bounds` (ascending, starting at 0 and ending at `data.len()` — the
/// layout [`ddp_topology::Partition::boundaries`] produces). Each chunk is
/// written by exactly one worker; the borrow checker enforces disjointness
/// through `split_at_mut`, so the result is identical to a serial sweep no
/// matter the interleaving.
pub fn run_chunked<T, F>(threads: usize, data: &mut [T], bounds: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    debug_assert!(bounds.first() == Some(&0) && bounds.last() == Some(&data.len()));
    if threads <= 1 || bounds.len() <= 2 {
        f(0, data);
        return;
    }
    // Carve the slice into per-partition chunks up front; one scoped thread
    // per chunk (partition counts track the thread count, so this never
    // oversubscribes meaningfully, and each chunk is owned by one worker).
    let mut chunks: Vec<(usize, &mut [T])> = Vec::with_capacity(bounds.len() - 1);
    let mut rest = data;
    for w in bounds.windows(2) {
        let (head, tail) = rest.split_at_mut(w[1] - w[0]);
        chunks.push((w[0], head));
        rest = tail;
    }
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(chunks.len());
        for (start, chunk) in chunks {
            handles.push(scope.spawn(move || f(start, chunk)));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        for threads in [1, 2, 4, 8] {
            let out = run_partitioned(threads, 37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn every_item_claimed_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counters: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        let out = run_partitioned(4, 64, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 64);
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i} ran a wrong number of times");
        }
    }

    #[test]
    fn zero_and_one_item_edge_cases() {
        assert_eq!(run_partitioned(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_partitioned(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = run_partitioned(16, 3, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn chunked_writes_match_serial_sweep() {
        let n = 1000usize;
        let bounds = [0usize, 17, 17, 400, n];
        for threads in [1, 2, 4] {
            let mut parallel = vec![0u64; n];
            run_chunked(threads, &mut parallel, &bounds, |start, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = ((start + k) as u64).wrapping_mul(0x9e37_79b9);
                }
            });
            let serial: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        run_partitioned(2, 8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}

/// Miri-sized audit of the claiming handoff: many small regions, every
/// result checked for exactly-once, in-order reassembly. Run with
/// `cargo miri test -p ddp-sim --features pool-audit pool_audit` (or as a
/// plain stress test without miri).
#[cfg(all(test, feature = "pool-audit"))]
mod pool_audit {
    use super::*;

    #[test]
    fn handoff_is_exactly_once_under_repeated_small_regions() {
        for round in 0..8usize {
            let items = 1 + round % 5;
            let threads = 1 + round % 4;
            let out = run_partitioned(threads, items, |i| (round, i));
            assert_eq!(out, (0..items).map(|i| (round, i)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunked_handoff_covers_every_slot() {
        let mut data = vec![0u8; 23];
        run_chunked(3, &mut data, &[0, 7, 11, 23], |_, chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }
}
