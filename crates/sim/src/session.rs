//! Session-model churn: a seeded join/leave/crash event stream.
//!
//! The legacy churn knob (`SimConfig::churn` + `rejoin_delay_ticks`) recycles
//! a fixed population of node *slots*: a departed slot waits offline and then
//! rejoins as a "new" peer under the same positional identity. That keeps the
//! arenas static but cannot express the open-membership dynamics the paper's
//! Gnutella setting actually has — peers that arrive for the first time,
//! leave for good, or crash without a goodbye, with the overlay growing to
//! accommodate newcomers.
//!
//! [`SessionConfig`] switches the engine to that open model: per-tick Poisson
//! arrivals of brand-new peers (fresh `NodeId`s once the free list runs dry),
//! permanent departures when a session expires, and a configurable fraction
//! of departures that are silent crashes. All randomness for the session
//! stream comes from its own derived RNG stream, so *enabling* the session
//! model never perturbs topology, content, workload, or legacy-churn draws —
//! and leaving it `None` reproduces the legacy engine tick-for-tick.

use crate::Tick;
use ddp_topology::NodeId;
use ddp_workload::LifetimeModel;
use rand::Rng;

/// Configuration of the session-model churn engine.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Expected number of brand-new peer arrivals per tick (Poisson).
    pub arrival_rate_per_tick: f64,
    /// Session-length distribution for arriving peers (minutes == ticks).
    pub session_length: LifetimeModel,
    /// Fraction of departures that are crashes: the crashed peer's links die
    /// (its neighbors see the edges vanish) but no graceful goodbye is sent,
    /// so defense state keyed by the dead identity must be TTL-expired
    /// rather than purged by a departure notice.
    pub crash_fraction: f64,
    /// Hard cap on the number of node slots the overlay may grow to. An
    /// arrival finding no free slot and no growth headroom is turned away.
    pub max_peers: usize,
}

impl SessionConfig {
    /// A steady-state stream for an overlay of `n` peers with the given mean
    /// session length: arrivals balance expected departures, crashes take a
    /// quarter of the exits, and the arena may grow to twice the start size.
    pub fn steady_state(n: usize, mean_session_ticks: f64) -> Self {
        SessionConfig {
            arrival_rate_per_tick: n as f64 / mean_session_ticks.max(1.0),
            session_length: LifetimeModel::Exponential { mean_min: mean_session_ticks },
            crash_fraction: 0.25,
            max_peers: n.saturating_mul(2),
        }
    }

    /// Check for values that would make the event stream meaningless.
    pub fn validate(&self) -> Result<(), String> {
        if !self.arrival_rate_per_tick.is_finite() || self.arrival_rate_per_tick < 0.0 {
            return Err(format!(
                "session arrival_rate_per_tick {} must be finite and >= 0",
                self.arrival_rate_per_tick
            ));
        }
        if !(0.0..=1.0).contains(&self.crash_fraction) {
            return Err(format!("session crash_fraction {} outside [0, 1]", self.crash_fraction));
        }
        if self.max_peers == 0 {
            return Err("session max_peers 0 forbids every arrival".into());
        }
        Ok(())
    }
}

/// Whitewashing support in the engine: a defensively isolated attacker sheds
/// its identity and returns under a fresh `NodeId` (see `ddp-attack`'s
/// `WhitewashPlan` for the attack-side wiring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WhitewashConfig {
    /// Ticks a fully-cut agent dwells offline before rejoining under a fresh
    /// identity.
    pub dwell_ticks: u32,
    /// Ticks the reborn agent stays dormant (no flooding) after rejoining —
    /// a burst attacker waits out the monitoring window before flooding
    /// again; 0 floods immediately.
    pub quiet_ticks: u32,
}

/// One completed identity change: at `tick`, the cut agent `old` came back
/// as the brand-new node `new`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WhitewashRecord {
    /// Tick the fresh identity joined the overlay.
    pub tick: Tick,
    /// The abandoned (cut) identity; its slot stays offline forever.
    pub old: NodeId,
    /// The fresh identity (always a newly grown slot).
    pub new: NodeId,
}

/// Membership-dynamics totals over a session-model run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Brand-new peers that joined.
    pub joins: u64,
    /// Graceful session-end departures.
    pub leaves: u64,
    /// Silent crash departures.
    pub crashes: u64,
    /// Arrivals turned away because the arena was at `max_peers` with no
    /// free slot.
    pub joins_skipped: u64,
    /// Node slots grown beyond the initial population.
    pub grown_slots: u64,
}

impl ddp_snapshot::Snapshottable for WhitewashConfig {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.u32(self.dwell_ticks);
        enc.u32(self.quiet_ticks);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(WhitewashConfig { dwell_ticks: dec.u32()?, quiet_ticks: dec.u32()? })
    }
}

impl ddp_snapshot::Snapshottable for WhitewashRecord {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.u32(self.tick);
        enc.u32(self.old.0);
        enc.u32(self.new.0);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(WhitewashRecord { tick: dec.u32()?, old: NodeId(dec.u32()?), new: NodeId(dec.u32()?) })
    }
}

impl ddp_snapshot::Snapshottable for SessionStats {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.u64(self.joins);
        enc.u64(self.leaves);
        enc.u64(self.crashes);
        enc.u64(self.joins_skipped);
        enc.u64(self.grown_slots);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(SessionStats {
            joins: dec.u64()?,
            leaves: dec.u64()?,
            crashes: dec.u64()?,
            joins_skipped: dec.u64()?,
            grown_slots: dec.u64()?,
        })
    }
}

/// Knuth's product-of-uniforms Poisson sampler. Exact for the per-tick
/// arrival rates the session model uses (runtime is O(λ) draws per call).
pub(crate) fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
        if k >= 100_000 {
            return k; // guard against pathological λ; unreachable in practice
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn steady_state_balances_arrivals_and_departures() {
        let s = SessionConfig::steady_state(300, 10.0);
        assert!((s.arrival_rate_per_tick - 30.0).abs() < 1e-9);
        assert_eq!(s.max_peers, 600);
        s.validate().unwrap();
    }

    #[test]
    fn validate_rejects_nonsense() {
        let mut s = SessionConfig::steady_state(100, 5.0);
        s.crash_fraction = 1.5;
        assert!(s.validate().unwrap_err().contains("crash_fraction"));
        let mut s = SessionConfig::steady_state(100, 5.0);
        s.arrival_rate_per_tick = f64::NAN;
        assert!(s.validate().is_err());
        let mut s = SessionConfig::steady_state(100, 5.0);
        s.max_peers = 0;
        assert!(s.validate().unwrap_err().contains("max_peers"));
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut rng = StdRng::seed_from_u64(7);
        for &lambda in &[0.5, 3.0, 20.0] {
            let n = 4000;
            let total: u64 = (0..n).map(|_| sample_poisson(&mut rng, lambda) as u64).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.15,
                "poisson({lambda}) sample mean {mean} too far off"
            );
        }
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        assert_eq!(sample_poisson(&mut rng, -1.0), 0);
    }
}
