//! Fault injection for DD-POLICE's control plane.
//!
//! The paper's protocol is specified over a reliable same-tick transport:
//! every `Neighbor_Traffic` report and neighbor-list announcement either
//! arrives within the minute or the peer is assumed silent. Real overlays
//! lose and delay control messages, and peers restart and forget protocol
//! state. The [`FaultPlane`] injects exactly those failures — per-message
//! loss, per-message delay, and per-peer crash-restart — **deterministically**
//! from the run's master seed, so a faulted run is as reproducible as a
//! clean one.
//!
//! ## Determinism
//!
//! Every decision is a pure hash of `(seed, salt, tick, sender, receiver,
//! attempt)` through a SplitMix64-style mixer. Two consequences the tests
//! rely on:
//!
//! * identical `SimConfig` + seed ⇒ identical fault pattern ⇒ identical run
//!   (including `cut_log`), and
//! * loss uses *threshold hashing* (`hash < loss`): the set of messages lost
//!   at 5% is a strict subset of the set lost at 20% for the same seed, so
//!   raising the loss rate can only remove deliveries, never add them.
//!
//! With an all-zero [`FaultConfig`] no hash can fall below the threshold and
//! the mailboxes stay empty: the mediated control plane is bit-for-bit the
//! reliable one.
//!
//! ## What is faulted
//!
//! * **List announcements** (`§3.1` exchange): each announcer→receiver copy
//!   is independently lost or delayed. A delayed copy is held in a mailbox
//!   with its send tick and applied on maturity *only if* it is newer than
//!   the receiver's current snapshot (late lists must not roll views back).
//! * **Neighbor_Traffic** (`§3.3` reports): the request leg can be lost; the
//!   reply leg can be lost or delayed. A delayed reply captures the report
//!   content *at send time* — when it matures, the requester sees stale
//!   counters, exactly the staleness a real late report carries.
//! * **Crash-restart**: per (tick, peer), the peer's detection state
//!   (exchange views, suspicion streaks) is wiped via
//!   [`Defense::on_peer_reset`](crate::Defense::on_peer_reset) and its
//!   in-flight mail is dropped. The peer stays online — this models a fast
//!   process restart, not churn.
//!
//! Transport faults are invisible to the *sender*: a lost announcement still
//! costs a control message. Only delivery is affected.

use crate::defense::TrafficReport;
use crate::Tick;
use ddp_metrics::ResilienceSummary;
use ddp_topology::NodeId;
use std::cell::RefCell;

/// Control-plane fault model, all probabilities per message (or per
/// peer-tick for crashes). The default is inert: no faults at all.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability a control message (list announcement, report request, or
    /// report reply) is dropped in transit.
    pub loss: f64,
    /// Probability a *surviving* list announcement or report reply is
    /// delivered [`delay_ticks`](Self::delay_ticks) ticks late.
    pub delay_prob: f64,
    /// Lateness of delayed messages, in ticks (≥ 1 when `delay_prob > 0`).
    pub delay_ticks: u32,
    /// Per-(peer, tick) probability of a crash-restart: the peer's police and
    /// exchange state is wiped and its in-flight mail dropped.
    pub crash_prob: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig { loss: 0.0, delay_prob: 0.0, delay_ticks: 1, crash_prob: 0.0 }
    }
}

impl FaultConfig {
    /// Whether this configuration can never inject a fault.
    pub fn is_inert(&self) -> bool {
        self.loss <= 0.0 && self.delay_prob <= 0.0 && self.crash_prob <= 0.0
    }

    /// Validate probability ranges.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in
            [("loss", self.loss), ("delay_prob", self.delay_prob), ("crash_prob", self.crash_prob)]
        {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("fault {name} {p} outside [0, 1]"));
            }
        }
        if self.delay_prob > 0.0 && self.delay_ticks == 0 {
            return Err("delay_prob > 0 needs delay_ticks >= 1".into());
        }
        Ok(())
    }
}

/// Decision sub-streams: distinct salts keep loss, delay, and crash draws
/// independent of each other for the same (tick, sender, receiver).
const SALT_LIST_LOSS: u64 = 0xA1;
const SALT_LIST_DELAY: u64 = 0xA2;
const SALT_REQUEST_LOSS: u64 = 0xB1;
const SALT_REPLY_LOSS: u64 = 0xB2;
const SALT_REPLY_DELAY: u64 = 0xB3;
const SALT_CRASH: u64 = 0xC1;

/// Matured mail horizon: a delayed report nobody consumed within this many
/// ticks of maturity is garbage-collected (the suspect stopped being judged).
const MAIL_GC_TICKS: u32 = 4;

fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A late neighbor-list announcement in flight.
#[derive(Debug, Clone)]
struct DelayedList {
    deliver_at: Tick,
    receiver: NodeId,
    announcer: NodeId,
    members: Vec<NodeId>,
    sent_at: Tick,
}

/// A late Neighbor_Traffic reply in flight (content frozen at send time).
#[derive(Debug, Clone)]
struct DelayedReport {
    deliver_at: Tick,
    requester: NodeId,
    reporter: NodeId,
    suspect: NodeId,
    report: TrafficReport,
    sent_at: Tick,
}

/// Mutable mailbox + accounting state, behind one `RefCell` so the fault
/// plane can be threaded through the shared [`TickObservation`]
/// (crate::TickObservation) without changing the `Defense` trait's `&obs`
/// calling convention.
#[derive(Debug, Default)]
struct PlaneState {
    lists: Vec<DelayedList>,
    reports: Vec<DelayedReport>,
    stats: ResilienceSummary,
}

/// Deterministic lossy/delaying transport for control messages.
#[derive(Debug)]
pub struct FaultPlane {
    cfg: FaultConfig,
    seed: u64,
    state: RefCell<PlaneState>,
}

impl FaultPlane {
    /// A fault plane for one run. `seed` should be derived from the run's
    /// master seed on its own stream.
    pub fn new(cfg: FaultConfig, seed: u64) -> Self {
        FaultPlane { cfg, seed, state: RefCell::new(PlaneState::default()) }
    }

    /// The active fault configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Uniform draw in [0, 1) for one decision point.
    fn unit_hash(&self, salt: u64, tick: Tick, a: NodeId, b: NodeId, attempt: u32) -> f64 {
        let mut h = self.seed ^ splitmix(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        h = splitmix(h ^ ((tick as u64) << 1 | 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        h = splitmix(h ^ (((a.0 as u64) << 32) | b.0 as u64).wrapping_mul(0xff51_afd7_ed55_8ccd));
        h = splitmix(h ^ (attempt as u64).wrapping_mul(0xc4ce_b9fe_1a85_ec53));
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn lost(&self, salt: u64, tick: Tick, from: NodeId, to: NodeId, attempt: u32) -> bool {
        // Threshold hashing: the lost set at a smaller loss rate is a subset
        // of the lost set at a larger one (same seed).
        self.cfg.loss > 0.0 && self.unit_hash(salt, tick, from, to, attempt) < self.cfg.loss
    }

    fn delayed(&self, salt: u64, tick: Tick, from: NodeId, to: NodeId, attempt: u32) -> bool {
        self.cfg.delay_prob > 0.0
            && self.unit_hash(salt, tick, from, to, attempt) < self.cfg.delay_prob
    }

    /// Start-of-tick housekeeping: garbage-collect mail nobody consumed.
    pub fn begin_tick(&self, tick: Tick) {
        let mut st = self.state.borrow_mut();
        st.lists.retain(|l| l.deliver_at.saturating_add(MAIL_GC_TICKS) >= tick);
        st.reports.retain(|r| r.deliver_at.saturating_add(MAIL_GC_TICKS) >= tick);
    }

    /// Whether `node` crash-restarts at `tick`. The caller (engine) is
    /// responsible for wiping the defense state; this drops the node's mail
    /// and counts the event.
    pub fn crashes(&self, tick: Tick, node: NodeId) -> bool {
        if self.cfg.crash_prob <= 0.0
            || self.unit_hash(SALT_CRASH, tick, node, node, 0) >= self.cfg.crash_prob
        {
            return false;
        }
        let mut st = self.state.borrow_mut();
        st.lists.retain(|l| l.receiver != node);
        st.reports.retain(|r| r.requester != node);
        st.stats.crash_restarts += 1;
        true
    }

    /// Transmit one list announcement copy. Returns the members if delivered
    /// this tick; a lost copy vanishes, a delayed copy is mailboxed.
    pub fn transmit_list(
        &self,
        tick: Tick,
        announcer: NodeId,
        receiver: NodeId,
        members: &[NodeId],
    ) -> Option<Vec<NodeId>> {
        let mut st = self.state.borrow_mut();
        st.stats.lists_sent += 1;
        if self.lost(SALT_LIST_LOSS, tick, announcer, receiver, 0) {
            st.stats.lists_lost += 1;
            return None;
        }
        if self.delayed(SALT_LIST_DELAY, tick, announcer, receiver, 0) {
            st.stats.lists_delayed += 1;
            st.lists.push(DelayedList {
                deliver_at: tick.saturating_add(self.cfg.delay_ticks),
                receiver,
                announcer,
                members: members.to_vec(),
                sent_at: tick,
            });
            return None;
        }
        Some(members.to_vec())
    }

    /// Drain every matured late list addressed to `receiver`, in send order.
    pub fn take_matured_lists(
        &self,
        tick: Tick,
        receiver: NodeId,
    ) -> Vec<(NodeId, Vec<NodeId>, Tick)> {
        let mut st = self.state.borrow_mut();
        let mut out = Vec::new();
        let mut kept = Vec::with_capacity(st.lists.len());
        for l in st.lists.drain(..) {
            if l.receiver == receiver && l.deliver_at <= tick {
                out.push((l.announcer, l.members, l.sent_at));
            } else {
                kept.push(l);
            }
        }
        st.lists = kept;
        out
    }

    /// Record that one matured late list was actually applied (the receiver
    /// was online, still adjacent, and held no fresher snapshot).
    pub fn note_late_list_applied(&self) {
        self.state.borrow_mut().stats.lists_late_applied += 1;
    }

    /// Whether the request leg of a report lookup is lost.
    pub fn request_lost(
        &self,
        tick: Tick,
        requester: NodeId,
        reporter: NodeId,
        attempt: u32,
    ) -> bool {
        self.lost(SALT_REQUEST_LOSS, tick, requester, reporter, attempt)
    }

    /// Fate of the reply leg: `None` = delivered now; `Some(true)` = lost;
    /// `Some(false)` = delayed (the caller must mailbox the content via
    /// [`post_report`](Self::post_report)).
    fn reply_faulted(
        &self,
        tick: Tick,
        reporter: NodeId,
        requester: NodeId,
        attempt: u32,
    ) -> Option<bool> {
        if self.lost(SALT_REPLY_LOSS, tick, reporter, requester, attempt) {
            return Some(true);
        }
        if self.delayed(SALT_REPLY_DELAY, tick, reporter, requester, attempt) {
            return Some(false);
        }
        None
    }

    /// Run the reply leg for a report computed this tick. Returns the report
    /// if it arrives now; otherwise it is dropped or mailboxed for later.
    pub fn deliver_reply(
        &self,
        tick: Tick,
        requester: NodeId,
        reporter: NodeId,
        suspect: NodeId,
        report: TrafficReport,
        attempt: u32,
    ) -> Option<TrafficReport> {
        match self.reply_faulted(tick, reporter, requester, attempt) {
            None => Some(report),
            Some(true) => None,
            Some(false) => {
                self.state.borrow_mut().reports.push(DelayedReport {
                    deliver_at: tick.saturating_add(self.cfg.delay_ticks),
                    requester,
                    reporter,
                    suspect,
                    report,
                    sent_at: tick,
                });
                None
            }
        }
    }

    /// Consume the newest matured late reply for (requester, reporter,
    /// suspect), if any. Returns the stale report and its send tick.
    pub fn take_stale_report(
        &self,
        tick: Tick,
        requester: NodeId,
        reporter: NodeId,
        suspect: NodeId,
    ) -> Option<(TrafficReport, Tick)> {
        let mut st = self.state.borrow_mut();
        let mut best: Option<usize> = None;
        for (i, r) in st.reports.iter().enumerate() {
            if r.requester == requester
                && r.reporter == reporter
                && r.suspect == suspect
                && r.deliver_at <= tick
                && best.is_none_or(|b| st.reports[b].sent_at < r.sent_at)
            {
                best = Some(i);
            }
        }
        let r = st.reports.swap_remove(best?);
        Some((r.report, r.sent_at))
    }

    /// Record the semantic outcome of one report lookup (called by the
    /// defense through the observation).
    pub fn note_report_outcome(&self, outcome: ReportOutcome) {
        let s = &mut self.state.borrow_mut().stats;
        s.reports_requested += 1;
        match outcome {
            ReportOutcome::Fresh => s.reports_fresh += 1,
            ReportOutcome::Stale => s.reports_stale_used += 1,
            ReportOutcome::Refused => s.reports_refused += 1,
            ReportOutcome::AssumedZero => s.reports_assumed_zero += 1,
        }
    }

    /// Bulk form of [`note_report_outcome`](Self::note_report_outcome): `n`
    /// lookups that all resolved the same way.
    /// Record `n` list announcements sent in one batch — the bulk mirror of
    /// the per-copy accounting [`transmit_list`](Self::transmit_list) does,
    /// for callers that skip per-copy transmission on an inert plane.
    pub fn note_lists_sent(&self, n: u64) {
        self.state.borrow_mut().stats.lists_sent += n;
    }

    pub fn note_report_outcomes(&self, outcome: ReportOutcome, n: u64) {
        let s = &mut self.state.borrow_mut().stats;
        s.reports_requested += n;
        match outcome {
            ReportOutcome::Fresh => s.reports_fresh += n,
            ReportOutcome::Stale => s.reports_stale_used += n,
            ReportOutcome::Refused => s.reports_refused += n,
            ReportOutcome::AssumedZero => s.reports_assumed_zero += n,
        }
    }

    /// Record retries spent on one suspect's report round.
    pub fn note_retries(&self, n: u64) {
        self.state.borrow_mut().stats.report_retries += n;
    }

    /// Record the snapshot age (ticks) behind one Buddy-Group judgment.
    pub fn note_snapshot_age(&self, age: Tick) {
        self.state.borrow_mut().stats.snapshot_age.record(age as f64);
    }

    /// A copy of the accumulated accounting.
    pub fn stats(&self) -> ResilienceSummary {
        self.state.borrow().stats.clone()
    }

    /// Append the mailboxes and accounting to a snapshot payload. `cfg` and
    /// `seed` are not serialized — the engine recreates the plane from the
    /// run configuration, so only the mutable state crosses the checkpoint.
    pub fn save_state(&self, enc: &mut ddp_snapshot::Enc) {
        let st = self.state.borrow();
        enc.put(&st.lists);
        enc.put(&st.reports);
        enc.put(&st.stats);
    }

    /// Rebuild the mailboxes and accounting from a snapshot payload.
    pub fn restore_state(
        &self,
        dec: &mut ddp_snapshot::Dec<'_>,
    ) -> Result<(), ddp_snapshot::SnapshotError> {
        let lists = dec.get()?;
        let reports = dec.get()?;
        let stats = dec.get()?;
        let mut st = self.state.borrow_mut();
        st.lists = lists;
        st.reports = reports;
        st.stats = stats;
        Ok(())
    }
}

impl ddp_snapshot::Snapshottable for DelayedList {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.u32(self.deliver_at);
        enc.u32(self.receiver.0);
        enc.u32(self.announcer.0);
        enc.usize(self.members.len());
        for m in &self.members {
            enc.u32(m.0);
        }
        enc.u32(self.sent_at);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        let deliver_at = dec.u32()?;
        let receiver = NodeId(dec.u32()?);
        let announcer = NodeId(dec.u32()?);
        let n = dec.len("DelayedList members")?;
        let mut members = Vec::with_capacity(n);
        for _ in 0..n {
            members.push(NodeId(dec.u32()?));
        }
        let sent_at = dec.u32()?;
        Ok(DelayedList { deliver_at, receiver, announcer, members, sent_at })
    }
}

impl ddp_snapshot::Snapshottable for DelayedReport {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.u32(self.deliver_at);
        enc.u32(self.requester.0);
        enc.u32(self.reporter.0);
        enc.u32(self.suspect.0);
        enc.put(&self.report);
        enc.u32(self.sent_at);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(DelayedReport {
            deliver_at: dec.u32()?,
            requester: NodeId(dec.u32()?),
            reporter: NodeId(dec.u32()?),
            suspect: NodeId(dec.u32()?),
            report: dec.get()?,
            sent_at: dec.u32()?,
        })
    }
}

/// How one report lookup was ultimately resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportOutcome {
    /// Answered by a same-tick report.
    Fresh,
    /// Answered by a matured late report within the timeout.
    Stale,
    /// The member refused (offline, disconnected, or silent) — the paper's
    /// assume-zero rule applies immediately, no retry.
    Refused,
    /// Transport failure persisted through retries and the stale mailbox:
    /// assumed zero.
    AssumedZero,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(loss: f64, delay_prob: f64, delay_ticks: u32) -> FaultPlane {
        FaultPlane::new(FaultConfig { loss, delay_prob, delay_ticks, crash_prob: 0.0 }, 0xfeed_beef)
    }

    #[test]
    fn inert_plane_always_delivers() {
        let p = plane(0.0, 0.0, 1);
        for t in 1..50u32 {
            for a in 0..10u32 {
                assert!(!p.request_lost(t, NodeId(a), NodeId(a + 1), 0));
                assert!(p.transmit_list(t, NodeId(a), NodeId(a + 1), &[NodeId(9)]).is_some());
                let r = TrafficReport { sent_to_suspect: 1, received_from_suspect: 2 };
                assert_eq!(p.deliver_reply(t, NodeId(a), NodeId(a + 1), NodeId(0), r, 0), Some(r));
            }
        }
        assert!(p.stats().lists_lost == 0 && p.stats().lists_delayed == 0);
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = plane(0.3, 0.2, 2);
        let b = plane(0.3, 0.2, 2);
        for t in 1..100u32 {
            assert_eq!(
                a.request_lost(t, NodeId(1), NodeId(2), 0),
                b.request_lost(t, NodeId(1), NodeId(2), 0)
            );
        }
    }

    #[test]
    fn loss_sets_nest_across_rates() {
        // Every message lost at 5% must also be lost at 20% (same seed).
        let low = plane(0.05, 0.0, 1);
        let high = plane(0.20, 0.0, 1);
        let mut low_losses = 0;
        for t in 1..200u32 {
            for a in 0..20u32 {
                let (from, to) = (NodeId(a), NodeId((a + 1) % 20));
                if low.request_lost(t, from, to, 0) {
                    low_losses += 1;
                    assert!(high.request_lost(t, from, to, 0), "nesting violated");
                }
            }
        }
        assert!(low_losses > 0, "5% of 4000 draws should lose something");
    }

    #[test]
    fn retries_rehash_with_attempt_number() {
        let p = plane(0.5, 0.0, 1);
        let mut differs = false;
        for t in 1..50u32 {
            if p.request_lost(t, NodeId(3), NodeId(4), 0)
                != p.request_lost(t, NodeId(3), NodeId(4), 1)
            {
                differs = true;
            }
        }
        assert!(differs, "attempt number must enter the hash");
    }

    #[test]
    fn delayed_list_matures_on_schedule() {
        let p = plane(0.0, 1.0, 2);
        let sent = p.transmit_list(5, NodeId(1), NodeId(2), &[NodeId(7)]);
        assert!(sent.is_none(), "delay_prob 1.0 must delay every copy");
        assert!(p.take_matured_lists(6, NodeId(2)).is_empty(), "not matured yet");
        let got = p.take_matured_lists(7, NodeId(2));
        assert_eq!(got.len(), 1);
        let (announcer, members, sent_at) = &got[0];
        assert_eq!((*announcer, sent_at), (NodeId(1), &5));
        assert_eq!(members, &[NodeId(7)]);
        assert!(p.take_matured_lists(8, NodeId(2)).is_empty(), "consumed");
    }

    #[test]
    fn delayed_reply_is_consumable_once_matured() {
        let p = plane(0.0, 1.0, 1);
        let r = TrafficReport { sent_to_suspect: 11, received_from_suspect: 3 };
        assert_eq!(p.deliver_reply(4, NodeId(1), NodeId(2), NodeId(9), r, 0), None);
        assert!(p.take_stale_report(4, NodeId(1), NodeId(2), NodeId(9)).is_none());
        let (got, sent_at) = p.take_stale_report(5, NodeId(1), NodeId(2), NodeId(9)).unwrap();
        assert_eq!((got, sent_at), (r, 4));
        assert!(p.take_stale_report(5, NodeId(1), NodeId(2), NodeId(9)).is_none());
    }

    #[test]
    fn crash_drops_pending_mail() {
        let cfg = FaultConfig { loss: 0.0, delay_prob: 1.0, delay_ticks: 1, crash_prob: 1.0 };
        let p = FaultPlane::new(cfg, 42);
        p.transmit_list(1, NodeId(1), NodeId(2), &[NodeId(3)]);
        assert!(p.crashes(1, NodeId(2)), "crash_prob 1.0 must crash");
        assert!(p.take_matured_lists(2, NodeId(2)).is_empty(), "mail dropped on crash");
        assert_eq!(p.stats().crash_restarts, 1);
    }

    #[test]
    fn gc_prunes_unconsumed_mail() {
        let p = plane(0.0, 1.0, 1);
        let r = TrafficReport { sent_to_suspect: 1, received_from_suspect: 1 };
        p.deliver_reply(1, NodeId(1), NodeId(2), NodeId(9), r, 0);
        p.begin_tick(2 + MAIL_GC_TICKS + 1);
        assert!(p
            .take_stale_report(2 + MAIL_GC_TICKS + 1, NodeId(1), NodeId(2), NodeId(9))
            .is_none());
    }

    #[test]
    fn mailbox_snapshot_roundtrip_preserves_in_flight_mail() {
        let p = plane(0.0, 1.0, 2);
        p.transmit_list(5, NodeId(1), NodeId(2), &[NodeId(7), NodeId(8)]);
        let r = TrafficReport { sent_to_suspect: 11, received_from_suspect: 3 };
        p.deliver_reply(5, NodeId(1), NodeId(2), NodeId(9), r, 0);
        p.note_retries(3);

        let mut enc = ddp_snapshot::Enc::new();
        p.save_state(&mut enc);
        let bytes = enc.into_bytes();

        let q = plane(0.0, 1.0, 2);
        let mut dec = ddp_snapshot::Dec::new(&bytes);
        q.restore_state(&mut dec).unwrap();
        dec.finish().unwrap();

        // The restored plane delivers the same mail on the same schedule.
        assert!(q.take_matured_lists(6, NodeId(2)).is_empty());
        let got = q.take_matured_lists(7, NodeId(2));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, vec![NodeId(7), NodeId(8)]);
        let (stale, sent_at) = q.take_stale_report(7, NodeId(1), NodeId(2), NodeId(9)).unwrap();
        assert_eq!((stale, sent_at), (r, 5));
        assert_eq!(q.stats().report_retries, 3);
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        assert!(FaultConfig::default().validate().is_ok());
        assert!(FaultConfig { loss: 1.5, ..FaultConfig::default() }.validate().is_err());
        assert!(FaultConfig { delay_prob: 0.5, delay_ticks: 0, ..FaultConfig::default() }
            .validate()
            .is_err());
        assert!(FaultConfig::default().is_inert());
        assert!(!FaultConfig { loss: 0.1, ..FaultConfig::default() }.is_inert());
    }
}
