//! Capacity-aware batch flooding.
//!
//! One `flood` call propagates a batch of `count` identical-origin queries
//! breadth-first through the overlay, consuming per-node processing budgets
//! and per-link bandwidth budgets, suppressing duplicates (each node
//! processes a batch at most once — the paper's §2.2 no-duplication
//! assumption applied per BFS wave), and optionally probing for an object to
//! compute success and response time.
//!
//! All scratch state (visited stamps, frontiers) is owned by [`FloodEngine`]
//! and reused across calls: the flooding loop performs no allocation once
//! the engine is warm.
//!
//! This is the simulator's hottest code: at 10⁵ nodes a single tick visits
//! millions of half-edges. The inner loop therefore runs against the
//! overlay's split-borrow ([`Overlay::flood_parts`]): per *sender* it fetches
//! the neighbor slice, the flat `[sent, accepted]` counter row, and the
//! capacity-table row exactly once, then walks the slots with no per-edge row
//! lookups — every counter update in `send_one` lands in the sender's row.

use crate::config::ForwardingPolicy;
use crate::overlay::{Overlay, ACCEPTED, SENT};
use ddp_metrics::TrafficAccumulator;
use ddp_topology::{DynamicGraph, Half, NodeId};
use ddp_workload::{ContentCatalog, ObjectId};

/// How the batch leaves its origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirstHop {
    /// Send `count` to every neighbor (a good peer's flooded query).
    All { count: u32 },
    /// Send `count` only via adjacency `slot` (an attacker flooding distinct
    /// queries per link, Figure 1 of the paper).
    Single { slot: usize, count: u32 },
}

/// Result of flooding one batch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FloodOutcome {
    /// BFS depth of the first node holding the target (0 when no hit).
    pub hit_depth: u32,
    /// One-way latency to the first hit, seconds (0 when no hit).
    pub hit_delay_secs: f64,
    /// Whether any reached node held the target object.
    pub found: bool,
    /// Nodes that processed the batch (excluding the origin).
    pub processed_nodes: u32,
}

/// Mutable per-tick environment the flood draws budgets from.
pub struct FloodEnv<'a> {
    /// Per-node processed-query counters for this tick.
    pub node_used: &'a mut [u32],
    /// Per-node processing capacities (queries/min).
    pub capacity: &'a [u32],
    /// Per-node online flags.
    pub online: &'a [bool],
    /// Previous-tick utilization per node (congestion delay input).
    pub prev_util: &'a [f32],
    /// Traffic accounting sink.
    pub traffic: &'a mut TrafficAccumulator,
    /// Capacity-sharing policy.
    pub policy: ForwardingPolicy,
    /// FairShare: multiple of the equal per-link share one link may use.
    pub fair_share_factor: f64,
    /// One-way per-hop latency, seconds.
    pub hop_latency_secs: f64,
    /// Idle per-query processing delay, seconds.
    pub proc_delay_secs: f64,
}

impl FloodEnv<'_> {
    /// Queueing-style congestion delay at node `v`, seconds: service time
    /// scaled by `1 / (1 - utilization)`, utilization taken from the
    /// previous tick (feedback, since this tick's load is still forming).
    #[inline]
    fn node_delay(&self, v: NodeId) -> f64 {
        let rho = self.prev_util[v.index()].min(0.98) as f64;
        self.proc_delay_secs / (1.0 - rho)
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    node: NodeId,
    parent: NodeId,
    count: u32,
    delay: f32,
}

/// Reusable flooding engine (one per simulation).
#[derive(Debug, Default)]
pub struct FloodEngine {
    visited: Vec<u32>,
    generation: u32,
    frontier: Vec<Entry>,
    next: Vec<Entry>,
    current_depth: u32,
}

impl FloodEngine {
    /// Engine for overlays of `n` nodes.
    pub fn new(n: usize) -> Self {
        FloodEngine {
            visited: vec![0; n],
            generation: 0,
            frontier: Vec::new(),
            next: Vec::new(),
            current_depth: 0,
        }
    }

    /// Grow to accommodate `n` nodes.
    pub fn resize(&mut self, n: usize) {
        if n > self.visited.len() {
            self.visited.resize(n, 0);
        }
    }

    #[inline]
    fn mark(&mut self, v: NodeId) {
        self.visited[v.index()] = self.generation;
    }

    /// Flood a batch from `origin`.
    ///
    /// `ttl` bounds the number of overlay hops; `target` (if any) is probed
    /// at every processing node to detect search success.
    pub fn flood(
        &mut self,
        overlay: &mut Overlay,
        origin: NodeId,
        first_hop: FirstHop,
        ttl: u8,
        target: Option<(&ContentCatalog, ObjectId)>,
        env: &mut FloodEnv<'_>,
    ) -> FloodOutcome {
        let mut outcome = FloodOutcome::default();
        if ttl == 0 || !env.online[origin.index()] {
            return outcome;
        }
        // New BFS wave: bump the visited generation (wrap -> full reset).
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.visited.fill(0);
            self.generation = 1;
        }
        self.frontier.clear();
        self.next.clear();
        self.mark(origin);
        self.current_depth = 1;

        let (graph, counters, class_idx, cap_table) = overlay.flood_parts();

        // First hop: origin pushes the batch out on the selected link(s).
        {
            let neigh = graph.neighbors(origin);
            let cap_row = &cap_table[class_idx[origin.index()] as usize];
            let row = counters.slice_mut(origin.index());
            match first_hop {
                FirstHop::All { count } => {
                    for (slot, &half) in neigh.iter().enumerate() {
                        self.send_one(
                            graph,
                            row,
                            cap_row,
                            class_idx,
                            origin,
                            half,
                            slot,
                            count,
                            0.0,
                            target,
                            env,
                            &mut outcome,
                        );
                    }
                }
                FirstHop::Single { slot, count } => {
                    debug_assert!(slot < neigh.len(), "first-hop slot out of range");
                    let half = neigh[slot];
                    self.send_one(
                        graph,
                        row,
                        cap_row,
                        class_idx,
                        origin,
                        half,
                        slot,
                        count,
                        0.0,
                        target,
                        env,
                        &mut outcome,
                    );
                }
            }
        }
        std::mem::swap(&mut self.frontier, &mut self.next);

        // Remaining hops.
        let mut hops_left = ttl - 1;
        while hops_left > 0 && !self.frontier.is_empty() {
            self.current_depth += 1;
            self.next.clear();
            // Move the frontier out so `send_one` can borrow `self` mutably;
            // the buffer is handed back afterwards (no allocation).
            let frontier = std::mem::take(&mut self.frontier);
            for e in &frontier {
                let neigh = graph.neighbors(e.node);
                if neigh.is_empty() {
                    continue;
                }
                // Per-sender hoists: every counter touched below lives in the
                // sender's row, and the capacity row depends only on the
                // sender's class.
                let cap_row = &cap_table[class_idx[e.node.index()] as usize];
                let row = counters.slice_mut(e.node.index());
                for (slot, &half) in neigh.iter().enumerate() {
                    if half.peer == e.parent {
                        continue; // never echo back along the arrival link
                    }
                    self.send_one(
                        graph,
                        row,
                        cap_row,
                        class_idx,
                        e.node,
                        half,
                        slot,
                        e.count,
                        e.delay,
                        target,
                        env,
                        &mut outcome,
                    );
                }
            }
            self.frontier = frontier;
            self.frontier.clear();
            std::mem::swap(&mut self.frontier, &mut self.next);
            hops_left -= 1;
        }
        // Traffic for the first hit traveling back along the reverse path.
        if outcome.found {
            env.traffic.hit_hops += outcome.hit_depth as u64;
        }
        outcome
    }

    /// Try to push `count` queries via the half-edge `half` occupying `slot`
    /// of the sender's adjacency (whose counter row is `row` and whose
    /// capacity-table row is `cap_row`); enqueue the receiver into `next` if
    /// it processes any of them.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn send_one(
        &mut self,
        graph: &DynamicGraph,
        row: &mut [[u32; 2]],
        cap_row: &[u32; 4],
        class_idx: &[u8],
        u: NodeId,
        half: Half,
        slot: usize,
        count: u32,
        delay_so_far: f32,
        target: Option<(&ContentCatalog, ObjectId)>,
        env: &mut FloodEnv<'_>,
        outcome: &mut FloodOutcome,
    ) {
        if count == 0 {
            return;
        }
        let v = half.peer;
        let vi = v.index();
        if !env.online[vi] {
            return;
        }
        // Link budget: capacity minus what already crossed this tick.
        let link_cap = cap_row[class_idx[vi] as usize];
        let already_on_link = row[slot][SENT];
        let link_room = link_cap.saturating_sub(already_on_link);
        let send_c = count.min(link_room);
        env.traffic.dropped += (count - send_c) as u64;
        if send_c == 0 {
            return;
        }
        row[slot][SENT] = already_on_link + send_c;
        env.traffic.query_hops += send_c as u64;

        // Duplicate suppression: v processes each batch wave at most once;
        // later arrivals land in its seen-GUID table and die there.
        if self.visited[vi] == self.generation {
            env.traffic.dropped += send_c as u64;
            return;
        }
        // Fresh arrival: v's receiver-side (dup-filtered) counter sees it
        // whether or not capacity lets v forward it.
        row[slot][ACCEPTED] += send_c;

        // Node processing budget (optionally fair-shared per incoming link).
        let node_room = env.capacity[vi].saturating_sub(env.node_used[vi]);
        let room = match env.policy {
            ForwardingPolicy::Fifo => node_room,
            ForwardingPolicy::FairShare => {
                // Each incoming link may consume at most `factor x capacity /
                // degree`; `already_on_link` is what this link used so far.
                let deg = graph.degree(v).max(1) as f64;
                let share = (env.fair_share_factor * env.capacity[vi] as f64 / deg) as u32;
                let link_allow = share.saturating_sub(already_on_link);
                node_room.min(link_allow)
            }
        };
        let proc_c = send_c.min(room);
        env.traffic.dropped += (send_c - proc_c) as u64;
        if proc_c == 0 {
            return;
        }
        env.node_used[vi] += proc_c;
        self.visited[vi] = self.generation;
        outcome.processed_nodes += 1;

        let delay = delay_so_far + (env.hop_latency_secs + env.node_delay(v)) as f32;
        if !outcome.found {
            if let Some((catalog, object)) = target {
                if catalog.holds(v, object) {
                    outcome.found = true;
                    outcome.hit_delay_secs = delay as f64;
                    outcome.hit_depth = self.current_depth;
                }
            }
        }
        self.next.push(Entry { node: v, parent: u, count: proc_c, delay });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddp_topology::DynamicGraph;
    use ddp_workload::content::ContentConfig;
    use ddp_workload::BandwidthClass;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn overlay(n: usize, edges: &[(u32, u32)]) -> Overlay {
        let mut g = DynamicGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        Overlay::new(g, &vec![BandwidthClass::Ethernet; n])
    }

    struct Env {
        node_used: Vec<u32>,
        capacity: Vec<u32>,
        online: Vec<bool>,
        prev_util: Vec<f32>,
        traffic: TrafficAccumulator,
    }

    impl Env {
        fn new(n: usize, cap: u32) -> Self {
            Env {
                node_used: vec![0; n],
                capacity: vec![cap; n],
                online: vec![true; n],
                prev_util: vec![0.0; n],
                traffic: TrafficAccumulator::default(),
            }
        }

        fn env(&mut self) -> FloodEnv<'_> {
            FloodEnv {
                node_used: &mut self.node_used,
                capacity: &self.capacity,
                online: &self.online,
                prev_util: &self.prev_util,
                traffic: &mut self.traffic,
                policy: ForwardingPolicy::Fifo,
                fair_share_factor: 2.0,
                hop_latency_secs: 0.05,
                proc_delay_secs: 0.004,
            }
        }
    }

    #[test]
    fn flood_reaches_everyone_within_ttl_on_a_path() {
        // 0-1-2-3-4: ttl 2 from node 0 processes nodes 1 and 2 only.
        let mut o = overlay(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut env = Env::new(5, 1000);
        let mut fe = FloodEngine::new(5);
        let out = fe.flood(&mut o, NodeId(0), FirstHop::All { count: 1 }, 2, None, &mut env.env());
        assert_eq!(out.processed_nodes, 2);
        assert_eq!(env.node_used, vec![0, 1, 1, 0, 0]);
        assert_eq!(o.sent_between(NodeId(0), NodeId(1)), 1);
        assert_eq!(o.sent_between(NodeId(1), NodeId(2)), 1);
        assert_eq!(o.sent_between(NodeId(2), NodeId(3)), 0);
    }

    #[test]
    fn duplicate_suppression_on_a_cycle() {
        // Triangle 0-1-2: node 0 floods; 1 and 2 both process once, and the
        // 1->2 / 2->1 copies are dup-dropped.
        let mut o = overlay(3, &[(0, 1), (1, 2), (0, 2)]);
        let mut env = Env::new(3, 1000);
        let mut fe = FloodEngine::new(3);
        let out = fe.flood(&mut o, NodeId(0), FirstHop::All { count: 5 }, 7, None, &mut env.env());
        assert_eq!(out.processed_nodes, 2);
        assert_eq!(env.node_used, vec![0, 5, 5]);
        // The duplicate copies were sent (consumed bandwidth) then dropped.
        assert_eq!(env.traffic.dropped, 10);
        // No echo back to the origin.
        assert_eq!(o.sent_between(NodeId(1), NodeId(0)), 0);
        assert_eq!(o.sent_between(NodeId(2), NodeId(0)), 0);
    }

    #[test]
    fn node_capacity_limits_processing() {
        // 0 -> 1 with capacity 3 at node 1: a batch of 10 processes 3.
        let mut o = overlay(2, &[(0, 1)]);
        let mut env = Env::new(2, 3);
        let mut fe = FloodEngine::new(2);
        fe.flood(&mut o, NodeId(0), FirstHop::All { count: 10 }, 2, None, &mut env.env());
        assert_eq!(env.node_used[1], 3);
        assert_eq!(env.traffic.dropped, 7);
        // The wire still carried all 10.
        assert_eq!(o.sent_between(NodeId(0), NodeId(1)), 10);
    }

    #[test]
    fn link_capacity_limits_transmission() {
        // Dialup receiver: link cap = 56 Kbps = 840 q/min at 500 B/query.
        let mut g = DynamicGraph::new(2);
        g.add_edge(NodeId(0), NodeId(1));
        let mut o = Overlay::new(g, &[BandwidthClass::Ethernet, BandwidthClass::Dialup]);
        let cap = o.link_capacity(NodeId(0), NodeId(1));
        assert_eq!(cap, 840);
        let mut env = Env::new(2, 100_000);
        let mut fe = FloodEngine::new(2);
        fe.flood(&mut o, NodeId(0), FirstHop::All { count: 20_000 }, 2, None, &mut env.env());
        assert_eq!(o.sent_between(NodeId(0), NodeId(1)), cap);
        assert_eq!(env.traffic.dropped, (20_000 - cap) as u64);
        assert_eq!(env.node_used[1], cap);
    }

    #[test]
    fn single_slot_first_hop_only_uses_that_link() {
        let mut o = overlay(4, &[(0, 1), (0, 2), (0, 3)]);
        let slot = o.graph().slot_of(NodeId(0), NodeId(2)).unwrap();
        let mut env = Env::new(4, 1000);
        let mut fe = FloodEngine::new(4);
        fe.flood(&mut o, NodeId(0), FirstHop::Single { slot, count: 9 }, 1, None, &mut env.env());
        assert_eq!(o.sent_between(NodeId(0), NodeId(2)), 9);
        assert_eq!(o.sent_between(NodeId(0), NodeId(1)), 0);
        assert_eq!(o.sent_between(NodeId(0), NodeId(3)), 0);
    }

    #[test]
    fn offline_nodes_are_skipped() {
        let mut o = overlay(3, &[(0, 1), (1, 2)]);
        let mut env = Env::new(3, 1000);
        env.online[1] = false;
        let mut fe = FloodEngine::new(3);
        let out = fe.flood(&mut o, NodeId(0), FirstHop::All { count: 4 }, 7, None, &mut env.env());
        assert_eq!(out.processed_nodes, 0);
        assert_eq!(env.node_used, vec![0, 0, 0]);
    }

    #[test]
    fn offline_origin_floods_nothing() {
        let mut o = overlay(2, &[(0, 1)]);
        let mut env = Env::new(2, 1000);
        env.online[0] = false;
        let mut fe = FloodEngine::new(2);
        let out = fe.flood(&mut o, NodeId(0), FirstHop::All { count: 4 }, 7, None, &mut env.env());
        assert_eq!(out.processed_nodes, 0);
        assert_eq!(env.traffic.query_hops, 0);
    }

    #[test]
    fn target_hit_records_depth_and_delay() {
        // 0-1-2; make node 2 hold an object and search for it.
        let mut o = overlay(3, &[(0, 1), (1, 2)]);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = ContentConfig { num_objects: 10, objects_per_peer: 10, alpha: 1.0 };
        let catalog = ContentCatalog::generate(3, &cfg, &mut rng);
        // With 10 objects and 10 per peer, node 2 holds everything.
        let mut env = Env::new(3, 1000);
        let mut fe = FloodEngine::new(3);
        let out = fe.flood(
            &mut o,
            NodeId(0),
            FirstHop::All { count: 1 },
            7,
            Some((&catalog, ObjectId(0))),
            &mut env.env(),
        );
        assert!(out.found);
        assert_eq!(out.hit_depth, 1, "node 1 also holds everything at depth 1");
        assert!(out.hit_delay_secs > 0.0);
        assert_eq!(env.traffic.hit_hops, 1);
    }

    #[test]
    fn congestion_raises_delay() {
        let mut o = overlay(2, &[(0, 1)]);
        let mut env = Env::new(2, 1000);
        let mut fe = FloodEngine::new(2);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = ContentConfig { num_objects: 2, objects_per_peer: 2, alpha: 1.0 };
        let catalog = ContentCatalog::generate(2, &cfg, &mut rng);
        let idle = fe
            .flood(
                &mut o,
                NodeId(0),
                FirstHop::All { count: 1 },
                2,
                Some((&catalog, ObjectId(0))),
                &mut env.env(),
            )
            .hit_delay_secs;
        o.reset_tick_counters();
        env.node_used.fill(0);
        env.prev_util[1] = 0.95;
        let busy = fe
            .flood(
                &mut o,
                NodeId(0),
                FirstHop::All { count: 1 },
                2,
                Some((&catalog, ObjectId(0))),
                &mut env.env(),
            )
            .hit_delay_secs;
        assert!(busy > idle * 2.0, "busy {busy} should dwarf idle {idle}");
        // Near-saturation (clamped at 0.98) inflates further.
        o.reset_tick_counters();
        env.node_used.fill(0);
        env.prev_util[1] = 1.0;
        let saturated = fe
            .flood(
                &mut o,
                NodeId(0),
                FirstHop::All { count: 1 },
                2,
                Some((&catalog, ObjectId(0))),
                &mut env.env(),
            )
            .hit_delay_secs;
        assert!(saturated > busy, "saturated {saturated} > busy {busy}");
    }

    #[test]
    fn fair_share_caps_one_links_consumption() {
        // Star: 1,2,3 -> 0. Node 0 capacity 90, degree 3, factor 1.0:
        // each incoming link may use at most 30.
        let mut o = overlay(4, &[(0, 1), (0, 2), (0, 3)]);
        let mut env = Env::new(4, 90);
        let mut fe = FloodEngine::new(4);
        let mut fenv = env.env();
        fenv.policy = ForwardingPolicy::FairShare;
        fenv.fair_share_factor = 1.0;
        fe.flood(&mut o, NodeId(1), FirstHop::All { count: 80 }, 1, None, &mut fenv);
        assert_eq!(env.node_used[0], 30, "fair share caps the flood at 30");
        // A second link still gets its share.
        let mut fenv = env.env();
        fenv.policy = ForwardingPolicy::FairShare;
        fenv.fair_share_factor = 1.0;
        fe.flood(&mut o, NodeId(2), FirstHop::All { count: 80 }, 1, None, &mut fenv);
        assert_eq!(env.node_used[0], 60);
    }

    #[test]
    fn ttl_zero_is_a_noop() {
        let mut o = overlay(2, &[(0, 1)]);
        let mut env = Env::new(2, 1000);
        let mut fe = FloodEngine::new(2);
        let out = fe.flood(&mut o, NodeId(0), FirstHop::All { count: 5 }, 0, None, &mut env.env());
        assert_eq!(out.processed_nodes, 0);
        assert_eq!(env.traffic.query_hops, 0);
    }

    #[test]
    fn generation_wraparound_resets_visited() {
        let mut o = overlay(2, &[(0, 1)]);
        let mut env = Env::new(2, 1000);
        let mut fe = FloodEngine::new(2);
        fe.generation = u32::MAX; // force wrap on next flood
        let out = fe.flood(&mut o, NodeId(0), FirstHop::All { count: 1 }, 2, None, &mut env.env());
        assert_eq!(out.processed_nodes, 1);
        // And a subsequent flood still works.
        let out2 = fe.flood(&mut o, NodeId(0), FirstHop::All { count: 1 }, 2, None, &mut env.env());
        assert_eq!(out2.processed_nodes, 1);
    }
}
