//! The defense plug-in interface.
//!
//! A defense is a *distributed detection protocol simulated centrally*: after
//! each tick it may inspect any peer's local view (its own per-neighbor
//! counters) and request reports from other peers — which go through the
//! suspect peers' [`ReportBehavior`], so lying attackers (§3.4) distort
//! exactly what they could distort in a real deployment — and then requests
//! disconnections. The engine applies them and keeps ground-truth error
//! statistics.

use crate::faults::{FaultPlane, ReportOutcome};
use crate::node::{ListBehavior, ReportBehavior};
use crate::overlay::Overlay;
use crate::Tick;
use ddp_metrics::VerdictTransition;
use ddp_topology::NodeId;

/// What one peer claims about its traffic with a suspect, in queries/min.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficReport {
    /// Claimed `Out_query(suspect)`: queries the reporter sent to the suspect.
    pub sent_to_suspect: u32,
    /// Claimed `In_query(suspect)`: queries the reporter got from the suspect.
    pub received_from_suspect: u32,
}

impl ddp_snapshot::Snapshottable for TrafficReport {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.u32(self.sent_to_suspect);
        enc.u32(self.received_from_suspect);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(TrafficReport { sent_to_suspect: dec.u32()?, received_from_suspect: dec.u32()? })
    }
}

/// Read-only view of one finished tick.
pub struct TickObservation<'a> {
    /// The tick that just completed.
    pub tick: Tick,
    /// The overlay with this tick's per-directed-edge counters.
    pub overlay: &'a Overlay,
    /// Per-node online flags.
    pub online: &'a [bool],
    /// Per-node "runs the detection protocol" flags (attackers do not).
    pub runs_defense: &'a [bool],
    /// Per-node report behavior (honest for good peers).
    pub report_behavior: &'a [ReportBehavior],
    /// Per-node neighbor-list exchange behavior (truthful for good peers).
    pub list_behavior: &'a [ListBehavior],
    /// Control-plane transport. `None` means the paper's reliable same-tick
    /// delivery; `Some` routes every protocol message through the fault
    /// plane's loss/delay decisions and mailboxes.
    pub faults: Option<&'a FaultPlane>,
}

/// The [`Sync`] slice of a [`TickObservation`]: everything about the frozen
/// tick *except* the fault plane (whose interior mutability pins it to one
/// thread). Every answer here is a pure function of the tick's frozen
/// counters, so worker threads of the parallel tick engine may consult it
/// concurrently and must get byte-identical answers to the serial path —
/// the `TickObservation` methods of the same name are thin delegates.
#[derive(Clone, Copy)]
pub struct FrozenTick<'a> {
    /// The tick that just completed.
    pub tick: Tick,
    /// The overlay with this tick's per-directed-edge counters.
    pub overlay: &'a Overlay,
    /// Per-node online flags.
    pub online: &'a [bool],
    /// Per-node "runs the detection protocol" flags (attackers do not).
    pub runs_defense: &'a [bool],
    /// Per-node report behavior (honest for good peers).
    pub report_behavior: &'a [ReportBehavior],
    /// Per-node neighbor-list exchange behavior (truthful for good peers).
    pub list_behavior: &'a [ListBehavior],
}

impl<'a> FrozenTick<'a> {
    /// Ask `reporter` for a `Neighbor_Traffic` report about `suspect`
    /// (§3.3). Returns `None` when the reporter refuses ("if a peer has not
    /// received a Neighbor_Traffic message ... within a predefined time
    /// period, it just assumes that peer j sent 0 query") or is offline /
    /// not connected to the suspect.
    ///
    /// A lying reporter distorts the count of queries *it sent to the
    /// suspect* — that is the field whose misreporting §3.4 analyzes (it
    /// shifts blame between the suspect and the suspect's neighbors).
    pub fn request_report(&self, reporter: NodeId, suspect: NodeId) -> Option<TrafficReport> {
        if !self.online[reporter.index()] || !self.overlay.contains_edge(reporter, suspect) {
            return None;
        }
        let base = TrafficReport {
            sent_to_suspect: self.overlay.accepted_between(reporter, suspect),
            received_from_suspect: self.overlay.accepted_between(suspect, reporter),
        };
        self.shape_report(reporter, suspect, base)
    }

    /// Apply `reporter`'s fixed report behavior to `base` counters: the
    /// cheating/collusion layer of [`request_report`](Self::request_report),
    /// split out so approximate `TrafficMonitor` backends can substitute
    /// sketch estimates for the exact counters while attackers keep lying
    /// about whatever numbers the monitor would have shown them.
    pub fn shape_report(
        &self,
        reporter: NodeId,
        suspect: NodeId,
        base: TrafficReport,
    ) -> Option<TrafficReport> {
        if !self.online[reporter.index()] || !self.overlay.contains_edge(reporter, suspect) {
            return None;
        }
        let true_sent = base.sent_to_suspect;
        let true_recv = base.received_from_suspect;
        match self.report_behavior[reporter.index()] {
            ReportBehavior::Honest => {
                Some(TrafficReport { sent_to_suspect: true_sent, received_from_suspect: true_recv })
            }
            ReportBehavior::Inflate(f) => Some(TrafficReport {
                sent_to_suspect: scale(true_sent, f),
                received_from_suspect: true_recv,
            }),
            ReportBehavior::Deflate(f) => Some(TrafficReport {
                sent_to_suspect: scale(true_sent, f),
                received_from_suspect: true_recv,
            }),
            ReportBehavior::Silent => None,
            ReportBehavior::ShieldColluders { factor } => {
                // Colluders recognize each other by sharing the coalition's
                // behavior; they hide a fellow colluder's output and answer
                // honestly about everyone else (a credible witness).
                let fellow = matches!(
                    self.report_behavior[suspect.index()],
                    ReportBehavior::ShieldColluders { .. }
                );
                Some(TrafficReport {
                    sent_to_suspect: true_sent,
                    received_from_suspect: if fellow {
                        scale(true_recv, factor)
                    } else {
                        true_recv
                    },
                })
            }
            ReportBehavior::FrameVictim { victim, inflate } => Some(TrafficReport {
                sent_to_suspect: true_sent,
                received_from_suspect: if suspect == victim {
                    scale(true_recv, inflate)
                } else {
                    true_recv
                },
            }),
        }
    }

    /// The neighbor list `announcer` sends during the exchange step (§3.1),
    /// or `None` if it refuses. Good peers announce the truth; a lying peer
    /// pads, hides, or withholds. Phantom entries for `PadFake` are drawn
    /// deterministically from the node-id space (plausible peer addresses
    /// that simply are not the announcer's neighbors).
    pub fn announced_list(&self, announcer: NodeId) -> Option<Vec<NodeId>> {
        if !self.online[announcer.index()] {
            return None;
        }
        let truth = || -> Vec<NodeId> {
            self.overlay.neighbors(announcer).iter().map(|h| h.peer).collect()
        };
        match self.list_behavior[announcer.index()] {
            ListBehavior::Truthful => Some(truth()),
            ListBehavior::Omit => Some(Vec::new()),
            ListBehavior::Refuse => None,
            ListBehavior::PadFake { extra } => {
                let mut list = truth();
                let n = self.overlay.node_count() as u64;
                let mut x = ((announcer.0 as u64) << 32) ^ (self.tick as u64) ^ 0x5eed;
                for _ in 0..extra {
                    // SplitMix-style stream of plausible phantom members.
                    x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
                    let mut z = x;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z ^= z >> 27;
                    let candidate = NodeId((z % n) as u32);
                    if candidate != announcer && !list.contains(&candidate) {
                        list.push(candidate);
                    }
                }
                Some(list)
            }
        }
    }

    /// §3.1's consistency check: ask `member` whether it really is a
    /// neighbor of `suspect`. Good peers answer truthfully; a compromised
    /// member vouches for a fellow attacker's claim (colluding puppets), and
    /// otherwise tells the truth (lying here about a good peer would expose
    /// the attacker to the paired-disconnect rule for no gain).
    pub fn confirm_membership(&self, member: NodeId, suspect: NodeId) -> bool {
        if !self.online[member.index()] {
            return false;
        }
        let truth = self.overlay.contains_edge(member, suspect);
        let member_lies = !matches!(self.report_behavior[member.index()], ReportBehavior::Honest);
        let suspect_lies = !matches!(self.list_behavior[suspect.index()], ListBehavior::Truthful);
        if member_lies && suspect_lies {
            return true; // collusion: the puppet confirms the padded claim
        }
        truth
    }

    /// A peer's own ground-truth view of one of its links: what `observer`
    /// itself measured about `neighbor` (no trust needed, §3.2's
    /// `Out_query` / `In_query` lists).
    pub fn own_counters(&self, observer: NodeId, neighbor: NodeId) -> TrafficReport {
        TrafficReport {
            sent_to_suspect: self.overlay.accepted_between(observer, neighbor),
            received_from_suspect: self.overlay.accepted_between(neighbor, observer),
        }
    }
}

/// Outcome of one transport-mediated `Neighbor_Traffic` round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportDelivery {
    /// The report arrived this tick.
    Fresh(TrafficReport),
    /// The reporter refused (offline, disconnected, or deliberately silent).
    /// The paper's assume-zero rule applies; retrying cannot help.
    Refused,
    /// The transport lost the request or the reply (or delayed the reply —
    /// it may surface later via [`TickObservation::stale_report`]). A retry
    /// with a higher attempt number may get through.
    Faulted,
}

impl<'a> TickObservation<'a> {
    /// The fault-free, [`Sync`] slice of this observation, shareable across
    /// the parallel tick engine's workers.
    pub fn frozen(&self) -> FrozenTick<'a> {
        FrozenTick {
            tick: self.tick,
            overlay: self.overlay,
            online: self.online,
            runs_defense: self.runs_defense,
            report_behavior: self.report_behavior,
            list_behavior: self.list_behavior,
        }
    }

    /// [`FrozenTick::request_report`], on the full observation.
    pub fn request_report(&self, reporter: NodeId, suspect: NodeId) -> Option<TrafficReport> {
        self.frozen().request_report(reporter, suspect)
    }

    /// [`FrozenTick::shape_report`], on the full observation.
    pub fn shape_report(
        &self,
        reporter: NodeId,
        suspect: NodeId,
        base: TrafficReport,
    ) -> Option<TrafficReport> {
        self.frozen().shape_report(reporter, suspect, base)
    }

    /// [`FrozenTick::announced_list`], on the full observation.
    pub fn announced_list(&self, announcer: NodeId) -> Option<Vec<NodeId>> {
        self.frozen().announced_list(announcer)
    }

    /// [`FrozenTick::confirm_membership`], on the full observation.
    pub fn confirm_membership(&self, member: NodeId, suspect: NodeId) -> bool {
        self.frozen().confirm_membership(member, suspect)
    }

    /// [`FrozenTick::own_counters`], on the full observation.
    pub fn own_counters(&self, observer: NodeId, neighbor: NodeId) -> TrafficReport {
        self.frozen().own_counters(observer, neighbor)
    }

    /// [`request_report`](Self::request_report) routed through the fault
    /// plane: `requester` asks `reporter` about `suspect`, `attempt` numbers
    /// this tick's retries so re-requests re-roll the transport dice.
    ///
    /// What the *reporter would say* is decided first — a refusal is a
    /// protocol-level answer and is reported as [`ReportDelivery::Refused`]
    /// whether or not the transport would also have failed, so fault-free and
    /// faulted runs agree exactly on which peers were silent.
    pub fn request_report_via(
        &self,
        requester: NodeId,
        reporter: NodeId,
        suspect: NodeId,
        attempt: u32,
    ) -> ReportDelivery {
        self.deliver_prepared_report(
            requester,
            reporter,
            suspect,
            self.request_report(reporter, suspect),
            attempt,
        )
    }

    /// Transport legs of [`request_report_via`](Self::request_report_via)
    /// with the reporter's answer already computed. The answer depends only
    /// on `(reporter, suspect)` and the tick's frozen counters, so a caller
    /// resolving the same pair for many observers may compute it once and
    /// replay it here; the per-requester fault dice still roll per call.
    pub fn deliver_prepared_report(
        &self,
        requester: NodeId,
        reporter: NodeId,
        suspect: NodeId,
        report: Option<TrafficReport>,
        attempt: u32,
    ) -> ReportDelivery {
        let Some(report) = report else {
            return ReportDelivery::Refused;
        };
        let Some(fp) = self.faults else {
            return ReportDelivery::Fresh(report);
        };
        if fp.request_lost(self.tick, requester, reporter, attempt) {
            return ReportDelivery::Faulted;
        }
        match fp.deliver_reply(self.tick, requester, reporter, suspect, report, attempt) {
            Some(r) => ReportDelivery::Fresh(r),
            None => ReportDelivery::Faulted,
        }
    }

    /// The newest matured *late* reply for (requester, reporter, suspect)
    /// from an earlier tick's faulted round trip, with its send tick.
    /// Consuming: a stale report answers at most one lookup.
    pub fn stale_report(
        &self,
        requester: NodeId,
        reporter: NodeId,
        suspect: NodeId,
    ) -> Option<(TrafficReport, Tick)> {
        self.faults?.take_stale_report(self.tick, requester, reporter, suspect)
    }

    /// Send one copy of `announcer`'s neighbor list to `receiver` through
    /// the transport. `None` means the copy was lost or delayed (a delayed
    /// copy surfaces later via [`matured_lists`](Self::matured_lists)).
    pub fn transmit_list(
        &self,
        announcer: NodeId,
        receiver: NodeId,
        members: &[NodeId],
    ) -> Option<Vec<NodeId>> {
        match self.faults {
            Some(fp) => fp.transmit_list(self.tick, announcer, receiver, members),
            None => Some(members.to_vec()),
        }
    }

    /// Drain every late list announcement that matured for `receiver`:
    /// `(announcer, members, sent_at)` in send order.
    pub fn matured_lists(&self, receiver: NodeId) -> Vec<(NodeId, Vec<NodeId>, Tick)> {
        match self.faults {
            Some(fp) => fp.take_matured_lists(self.tick, receiver),
            None => Vec::new(),
        }
    }

    /// Resilience accounting: how one report lookup was resolved. No-op on a
    /// reliable transport.
    pub fn note_report_outcome(&self, outcome: ReportOutcome) {
        if let Some(fp) = self.faults {
            fp.note_report_outcome(outcome);
        }
    }

    /// Bulk form of [`note_report_outcome`](Self::note_report_outcome): `n`
    /// lookups that all resolved the same way. Counter sums are
    /// order-independent, so batching is exactly equivalent to `n` single
    /// notes.
    pub fn note_report_outcomes(&self, outcome: ReportOutcome, n: u64) {
        if let Some(fp) = self.faults {
            fp.note_report_outcomes(outcome, n);
        }
    }

    /// Resilience accounting: a matured late list was actually applied.
    pub fn note_late_list_applied(&self) {
        if let Some(fp) = self.faults {
            fp.note_late_list_applied();
        }
    }

    /// Resilience accounting: retries spent on one suspect's report round.
    pub fn note_retries(&self, n: u64) {
        if let Some(fp) = self.faults {
            fp.note_retries(n);
        }
    }

    /// Resilience accounting: age (ticks) of the membership snapshot behind
    /// one Buddy-Group judgment.
    pub fn note_snapshot_age(&self, age: Tick) {
        if let Some(fp) = self.faults {
            fp.note_snapshot_age(age);
        }
    }
}

fn scale(v: u32, f: f64) -> u32 {
    (v as f64 * f).round().clamp(0.0, u32::MAX as f64) as u32
}

/// Disconnection requests and control-message accounting for one tick.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Actions {
    /// `(observer, suspect)` pairs: observer cuts its link to suspect.
    pub cuts: Vec<(NodeId, NodeId)>,
    /// `(observer, suspect)` pairs: observer re-dials a quarantined suspect
    /// for a probationary readmission probe. Applied after cuts; ignored if
    /// either endpoint is offline.
    pub reconnects: Vec<(NodeId, NodeId)>,
    /// Verdict-lifecycle state changes decided this tick, for the engine's
    /// ledger. Defenses without a verdict machine leave this empty.
    pub transitions: Vec<VerdictTransition>,
    /// Control messages the defense exchanged this tick (neighbor lists,
    /// Neighbor_Traffic, BG pings) — feeds traffic-cost accounting.
    pub control_msgs: u64,
}

impl Actions {
    /// Request that `observer` disconnect from `suspect`.
    pub fn cut(&mut self, observer: NodeId, suspect: NodeId) {
        self.cuts.push((observer, suspect));
    }

    /// Request that `observer` re-dial `suspect` for a readmission probe.
    pub fn reconnect(&mut self, observer: NodeId, suspect: NodeId) {
        self.reconnects.push((observer, suspect));
    }

    /// Record a verdict-lifecycle transition in the ledger.
    pub fn transition(&mut self, t: VerdictTransition) {
        self.transitions.push(t);
    }
}

/// A pluggable detection/defense protocol.
pub trait Defense {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Inspect the finished tick and request actions.
    fn on_tick(&mut self, obs: &TickObservation<'_>, actions: &mut Actions);

    /// The engine's worker-pool width changed. A defense that shards its
    /// per-observer work may honor it; the contract is that any `threads`
    /// value must produce byte-identical observable behavior (actions,
    /// snapshot payload, traces) to `threads == 1`. The default ignores it.
    fn set_parallelism(&mut self, _threads: usize) {}

    /// A slot left and rejoined as a brand-new peer: drop remembered state.
    fn on_peer_reset(&mut self, _node: NodeId) {}

    /// The engine added an overlay connection (join or attacker rejoin).
    /// `deg_u` / `deg_v` are the endpoints' overlay degrees *after* the
    /// addition — an event-driven exchange announces to exactly that many
    /// neighbors, so cost accounting can use the real fan-out.
    fn on_edge_added(&mut self, _u: NodeId, _v: NodeId, _deg_u: usize, _deg_v: usize) {}

    /// The engine removed an overlay connection (departure or cut).
    /// `deg_u` / `deg_v` are the endpoints' degrees *after* the removal.
    fn on_edge_removed(&mut self, _u: NodeId, _v: NodeId, _deg_u: usize, _deg_v: usize) {}

    /// A peer left the overlay for good (session-model graceful departure,
    /// or its slot is being recycled for a newcomer). Unlike
    /// [`on_peer_reset`](Self::on_peer_reset) — which clears what the *slot
    /// itself* remembers — this must drop state *about* the departed
    /// identity held anywhere in the defense, so a future occupant of the
    /// same address inherits no counters, views, or verdicts.
    fn on_peer_departed(&mut self, _node: NodeId) {}

    /// The engine grew the overlay to `n` node slots (session-model joins or
    /// whitewash rebirths). Per-node defense state must be extended before
    /// any other hook references the new ids.
    fn on_nodes_grown(&mut self, _n: usize) {}

    /// Whether the self-healing rewiring may NOT connect `u` and `v`: true
    /// when either endpoint holds a live quarantine/probation verdict about
    /// the other. The session-model bootstrap dialing consults this so churn
    /// repair cannot silently undo a defensive cut.
    fn forbids_link(&self, _u: NodeId, _v: NodeId) -> bool {
        false
    }

    /// Which traffic-monitor backend the defense reads its per-neighbor
    /// query counts from, as a stable label for run summaries and BENCH
    /// rows — `None` for defenses without pluggable monitoring (rendered as
    /// the exact default). The engine stamps it on `RunSummary`.
    fn monitor_backend(&self) -> Option<String> {
        None
    }

    /// Whether this defense implements [`save_state`](Self::save_state) /
    /// [`restore_state`](Self::restore_state). The engine refuses to write a
    /// snapshot around a defense that cannot come back — a half-checkpointed
    /// engine would silently diverge on resume.
    fn snapshot_support(&self) -> bool {
        false
    }

    /// Append every piece of cross-tick defense state to the snapshot
    /// payload. Only called when [`snapshot_support`](Self::snapshot_support)
    /// is true.
    fn save_state(&self, _enc: &mut ddp_snapshot::Enc) {}

    /// Rebuild cross-tick defense state from a snapshot payload written by
    /// [`save_state`](Self::save_state). Must reject corrupt bytes with a
    /// typed error, never a panic.
    fn restore_state(
        &mut self,
        _dec: &mut ddp_snapshot::Dec<'_>,
    ) -> Result<(), ddp_snapshot::SnapshotError> {
        Err(ddp_snapshot::SnapshotError::Unsupported {
            what: "this defense implements no snapshot state",
        })
    }
}

impl<D: Defense + ?Sized> Defense for Box<D> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn on_tick(&mut self, obs: &TickObservation<'_>, actions: &mut Actions) {
        (**self).on_tick(obs, actions)
    }
    fn set_parallelism(&mut self, threads: usize) {
        (**self).set_parallelism(threads)
    }
    fn on_peer_reset(&mut self, node: NodeId) {
        (**self).on_peer_reset(node)
    }
    fn on_edge_added(&mut self, u: NodeId, v: NodeId, deg_u: usize, deg_v: usize) {
        (**self).on_edge_added(u, v, deg_u, deg_v)
    }
    fn on_edge_removed(&mut self, u: NodeId, v: NodeId, deg_u: usize, deg_v: usize) {
        (**self).on_edge_removed(u, v, deg_u, deg_v)
    }
    fn on_peer_departed(&mut self, node: NodeId) {
        (**self).on_peer_departed(node)
    }
    fn on_nodes_grown(&mut self, n: usize) {
        (**self).on_nodes_grown(n)
    }
    fn forbids_link(&self, u: NodeId, v: NodeId) -> bool {
        (**self).forbids_link(u, v)
    }
    fn monitor_backend(&self) -> Option<String> {
        (**self).monitor_backend()
    }
    fn snapshot_support(&self) -> bool {
        (**self).snapshot_support()
    }
    fn save_state(&self, enc: &mut ddp_snapshot::Enc) {
        (**self).save_state(enc)
    }
    fn restore_state(
        &mut self,
        dec: &mut ddp_snapshot::Dec<'_>,
    ) -> Result<(), ddp_snapshot::SnapshotError> {
        (**self).restore_state(dec)
    }
}

/// The undefended baseline: observes nothing, cuts nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoDefense;

impl Defense for NoDefense {
    fn name(&self) -> &'static str {
        "none"
    }

    fn on_tick(&mut self, _obs: &TickObservation<'_>, _actions: &mut Actions) {}

    /// Stateless: snapshotting is trivially supported with an empty payload.
    fn snapshot_support(&self) -> bool {
        true
    }

    fn restore_state(
        &mut self,
        _dec: &mut ddp_snapshot::Dec<'_>,
    ) -> Result<(), ddp_snapshot::SnapshotError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddp_topology::DynamicGraph;
    use ddp_workload::BandwidthClass;

    fn setup() -> (Overlay, Vec<bool>, Vec<bool>) {
        let mut g = DynamicGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        let mut o = Overlay::new(g, &[BandwidthClass::Ethernet; 3]);
        let s01 = o.graph().slot_of(NodeId(0), NodeId(1)).unwrap();
        o.record_send(NodeId(0), s01, 100);
        o.record_accept(NodeId(0), s01, 100);
        let s10 = o.graph().slot_of(NodeId(1), NodeId(0)).unwrap();
        o.record_send(NodeId(1), s10, 7);
        o.record_accept(NodeId(1), s10, 7);
        (o, vec![true; 3], vec![true; 3])
    }

    const TRUTHFUL: &[ListBehavior] = &[ListBehavior::Truthful; 8];

    fn obs<'a>(
        overlay: &'a Overlay,
        online: &'a [bool],
        runs: &'a [bool],
        behavior: &'a [ReportBehavior],
    ) -> TickObservation<'a> {
        TickObservation {
            tick: 1,
            overlay,
            online,
            runs_defense: runs,
            report_behavior: behavior,
            list_behavior: &TRUTHFUL[..overlay.node_count()],
            faults: None,
        }
    }

    #[test]
    fn honest_report_matches_counters() {
        let (o, online, runs) = setup();
        let behavior = vec![ReportBehavior::Honest; 3];
        let ob = obs(&o, &online, &runs, &behavior);
        let r = ob.request_report(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(r.sent_to_suspect, 100);
        assert_eq!(r.received_from_suspect, 7);
    }

    #[test]
    fn silent_reporter_returns_none() {
        let (o, online, runs) = setup();
        let behavior = vec![ReportBehavior::Silent, ReportBehavior::Honest, ReportBehavior::Honest];
        let ob = obs(&o, &online, &runs, &behavior);
        assert!(ob.request_report(NodeId(0), NodeId(1)).is_none());
    }

    #[test]
    fn inflate_and_deflate_scale_sent_count() {
        let (o, online, runs) = setup();
        let behavior =
            vec![ReportBehavior::Inflate(2.0), ReportBehavior::Honest, ReportBehavior::Honest];
        let ob = obs(&o, &online, &runs, &behavior);
        assert_eq!(ob.request_report(NodeId(0), NodeId(1)).unwrap().sent_to_suspect, 200);

        let behavior =
            vec![ReportBehavior::Deflate(0.1), ReportBehavior::Honest, ReportBehavior::Honest];
        let ob = obs(&o, &online, &runs, &behavior);
        assert_eq!(ob.request_report(NodeId(0), NodeId(1)).unwrap().sent_to_suspect, 10);
    }

    #[test]
    fn unconnected_or_offline_reporters_refuse() {
        let (o, mut online, runs) = setup();
        let behavior = vec![ReportBehavior::Honest; 3];
        {
            let ob = obs(&o, &online, &runs, &behavior);
            assert!(ob.request_report(NodeId(0), NodeId(2)).is_none(), "not neighbors");
        }
        online[0] = false;
        let ob = obs(&o, &online, &runs, &behavior);
        assert!(ob.request_report(NodeId(0), NodeId(1)).is_none(), "offline");
    }

    #[test]
    fn own_counters_are_ground_truth() {
        let (o, online, runs) = setup();
        let behavior = vec![ReportBehavior::Silent; 3]; // lying doesn't matter
        let ob = obs(&o, &online, &runs, &behavior);
        let r = ob.own_counters(NodeId(1), NodeId(0));
        assert_eq!(r.sent_to_suspect, 7);
        assert_eq!(r.received_from_suspect, 100);
    }

    #[test]
    fn reliable_transport_mediation_matches_direct_access() {
        let (o, online, runs) = setup();
        let behavior = vec![ReportBehavior::Honest; 3];
        let ob = obs(&o, &online, &runs, &behavior);
        // Fresh delivery equals the unmediated oracle.
        assert_eq!(
            ob.request_report_via(NodeId(2), NodeId(0), NodeId(1), 0),
            ReportDelivery::Fresh(ob.request_report(NodeId(0), NodeId(1)).unwrap())
        );
        // A non-neighbor refuses — that is protocol, not transport.
        assert_eq!(
            ob.request_report_via(NodeId(1), NodeId(0), NodeId(2), 0),
            ReportDelivery::Refused
        );
        // Lists pass through verbatim; no mail ever matures.
        let members = [NodeId(5), NodeId(6)];
        assert_eq!(ob.transmit_list(NodeId(0), NodeId(1), &members).unwrap(), members);
        assert!(ob.matured_lists(NodeId(1)).is_empty());
        assert!(ob.stale_report(NodeId(0), NodeId(1), NodeId(2)).is_none());
    }

    #[test]
    fn faulted_transport_mediation_reports_transport_failures() {
        use crate::faults::{FaultConfig, FaultPlane};
        let (o, online, runs) = setup();
        let behavior = vec![ReportBehavior::Honest; 3];
        let plane = FaultPlane::new(FaultConfig { loss: 1.0, ..FaultConfig::default() }, 7);
        let mut ob = obs(&o, &online, &runs, &behavior);
        ob.faults = Some(&plane);
        // Total loss: every answerable lookup comes back Faulted, but a
        // refusal is still Refused — the oracle answers before the transport.
        assert_eq!(
            ob.request_report_via(NodeId(2), NodeId(0), NodeId(1), 0),
            ReportDelivery::Faulted
        );
        assert_eq!(
            ob.request_report_via(NodeId(1), NodeId(0), NodeId(2), 0),
            ReportDelivery::Refused
        );
        assert!(ob.transmit_list(NodeId(0), NodeId(1), &[NodeId(5)]).is_none());
    }

    #[test]
    fn frozen_view_is_sync_and_answers_like_the_observation() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<FrozenTick<'static>>();

        let (o, online, runs) = setup();
        let behavior =
            vec![ReportBehavior::Inflate(2.0), ReportBehavior::Honest, ReportBehavior::Honest];
        let ob = obs(&o, &online, &runs, &behavior);
        let fr = ob.frozen();
        assert_eq!(
            fr.request_report(NodeId(0), NodeId(1)),
            ob.request_report(NodeId(0), NodeId(1))
        );
        assert_eq!(fr.announced_list(NodeId(1)), ob.announced_list(NodeId(1)));
        assert_eq!(
            fr.confirm_membership(NodeId(2), NodeId(1)),
            ob.confirm_membership(NodeId(2), NodeId(1))
        );
        assert_eq!(fr.own_counters(NodeId(1), NodeId(0)), ob.own_counters(NodeId(1), NodeId(0)));
    }

    #[test]
    fn actions_collects_cuts() {
        let mut a = Actions::default();
        a.cut(NodeId(1), NodeId(2));
        a.control_msgs += 5;
        assert_eq!(a.cuts, vec![(NodeId(1), NodeId(2))]);
        assert_eq!(a.control_msgs, 5);
    }
}
