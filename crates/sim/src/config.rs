//! Simulation configuration.

use crate::faults::FaultConfig;
use crate::session::SessionConfig;
use ddp_topology::TopologyConfig;
use ddp_workload::content::ContentConfig;
use ddp_workload::{BandwidthModel, LifetimeModel, QueryArrivals};

/// How a saturated peer shares its processing capacity among neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardingPolicy {
    /// First-come-first-served: whoever's queries arrive first consume the
    /// budget (plain Gnutella; attack traffic crowds out good traffic).
    Fifo,
    /// Per-incoming-link fair share, the Daswani & Garcia-Molina–style
    /// application-layer load-balancing baseline the paper cites as \[21\]:
    /// each incoming link may consume at most `fair_share_factor × capacity /
    /// degree` of the peer's capacity.
    FairShare,
}

/// All knobs of one simulation run. Defaults mirror §3.5 of the paper at
/// bench scale (2,000 peers); [`SimConfig::paper_scale`] selects the full
/// 20,000-peer setting.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Overlay topology to generate.
    pub topology: TopologyConfig,
    /// Flood TTL for queries. The classic Gnutella TTL is 7; on our dense
    /// mean-degree-6 overlays TTL 4 already reaches a large audience while
    /// keeping the unattacked network below saturation (see DESIGN.md §6).
    pub ttl: u8,
    /// Mean good-peer query processing capacity, queries/minute (§2.3
    /// measures ~15,000/min for a dedicated peer; the paper then assumes "a
    /// good peer is capable of processing 1,000 queries per minute" for
    /// peers with conventional tasks).
    pub good_capacity_qpm: u32,
    /// Relative spread of per-peer capacity: each peer's capacity is drawn
    /// uniformly from `mean × [1 − spread, 1 + spread]`. Real peers differ
    /// in hardware and local-index size (§2.3 notes both), and the
    /// heterogeneity is what smears detection-error magnitudes across the
    /// cut-threshold range instead of clustering them at one value.
    pub capacity_spread: f64,
    /// Attacker generation capability, queries/minute (§2.3: "a bad peer is
    /// capable of sending 20,000 queries per minute").
    pub attacker_rate_qpm: u32,
    /// Query issue process for good peers.
    pub arrivals: QueryArrivals,
    /// Shared-content catalog settings.
    pub content: ContentConfig,
    /// Session lifetime model (churn).
    pub lifetime: LifetimeModel,
    /// Peer bandwidth population.
    pub bandwidth: BandwidthModel,
    /// Whether peers churn at all.
    pub churn: bool,
    /// Ticks a departed slot stays offline before rejoining as a new peer.
    pub rejoin_delay_ticks: u32,
    /// Ticks a defensively disconnected attacker waits before re-connecting.
    /// `u32::MAX` (the default) disables rejoin, matching the paper's
    /// simulations where damage decays monotonically once agents are cut;
    /// §3.7.2's remark that "no mechanism can prevent the DDoS agent from
    /// joining the system again" is exercised as an extension experiment.
    pub attacker_rejoin_delay_ticks: u32,
    /// Number of fresh connections a (re)joining peer establishes.
    pub join_degree: usize,
    /// One-way per-hop overlay latency, seconds.
    pub hop_latency_secs: f64,
    /// Per-query processing time at an idle peer, seconds.
    pub proc_delay_secs: f64,
    /// Capacity sharing policy at saturated peers.
    pub forwarding: ForwardingPolicy,
    /// FairShare: multiple of the equal share one link may consume.
    pub fair_share_factor: f64,
    /// Query timeout: successful responses slower than this count as failed.
    pub response_timeout_secs: f64,
    /// Control-plane fault injection (lost/delayed protocol messages,
    /// crash-restarting peers). Inert by default — the reliable-transport
    /// setting the paper assumes.
    pub faults: FaultConfig,
    /// Open-membership session model: Poisson arrivals of brand-new peers,
    /// permanent leave/crash departures, and arena growth. `None` (the
    /// default) keeps the legacy fixed-slot churn above and reproduces every
    /// pre-session run tick-for-tick; when set, it supersedes the `churn` /
    /// `lifetime` / `rejoin_delay_ticks` recycling model for good peers.
    pub session: Option<SessionConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            topology: TopologyConfig::default(),
            ttl: 4,
            good_capacity_qpm: 1_000,
            capacity_spread: 0.5,
            attacker_rate_qpm: 20_000,
            arrivals: QueryArrivals::default(),
            content: ContentConfig::default(),
            lifetime: LifetimeModel::default(),
            bandwidth: BandwidthModel::default(),
            churn: true,
            rejoin_delay_ticks: 1,
            attacker_rejoin_delay_ticks: u32::MAX,
            join_degree: 3,
            hop_latency_secs: 0.05,
            proc_delay_secs: 0.004,
            forwarding: ForwardingPolicy::Fifo,
            fair_share_factor: 2.0,
            response_timeout_secs: 60.0,
            faults: FaultConfig::default(),
            session: None,
        }
    }
}

impl SimConfig {
    /// The paper's full-scale setting: 20,000 peers.
    pub fn paper_scale() -> Self {
        SimConfig { topology: TopologyConfig::paper_scale(), ..SimConfig::default() }
    }

    /// Number of peers in the configured topology.
    pub fn peers(&self) -> usize {
        self.topology.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = SimConfig::default();
        assert_eq!(c.good_capacity_qpm, 1_000);
        assert_eq!(c.attacker_rate_qpm, 20_000);
        assert!((c.arrivals.rate_qpm - 0.3).abs() < 1e-12);
        assert!(c.churn);
    }

    #[test]
    fn paper_scale_has_20k_peers() {
        assert_eq!(SimConfig::paper_scale().peers(), 20_000);
    }
}

/// A configuration problem detected by [`SimConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid SimConfig: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl SimConfig {
    /// Check the configuration for values that would make a run meaningless
    /// (the constructors accept anything; experiments call this before
    /// spending wall-clock on a nonsense run).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.peers() < 2 {
            return Err(ConfigError("need at least 2 peers".into()));
        }
        if self.ttl == 0 {
            return Err(ConfigError("ttl of 0 floods nothing".into()));
        }
        if self.good_capacity_qpm == 0 {
            return Err(ConfigError("good peers with zero capacity cannot forward".into()));
        }
        if !(0.0..=0.95).contains(&self.capacity_spread) {
            return Err(ConfigError(format!(
                "capacity_spread {} outside [0, 0.95]",
                self.capacity_spread
            )));
        }
        if self.join_degree == 0 {
            return Err(ConfigError("join_degree 0 strands rejoining peers".into()));
        }
        if self.hop_latency_secs < 0.0 || self.proc_delay_secs < 0.0 {
            return Err(ConfigError("latencies must be non-negative".into()));
        }
        if self.response_timeout_secs <= 0.0 {
            return Err(ConfigError("response timeout must be positive".into()));
        }
        if self.fair_share_factor < 1.0 {
            return Err(ConfigError(format!(
                "fair_share_factor {} < 1 starves every link",
                self.fair_share_factor
            )));
        }
        self.faults.validate().map_err(ConfigError)?;
        if let Some(session) = &self.session {
            session.validate().map_err(ConfigError)?;
            if session.max_peers < self.peers() {
                return Err(ConfigError(format!(
                    "session max_peers {} below the starting population {}",
                    session.max_peers,
                    self.peers()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod validate_tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(SimConfig::default().validate(), Ok(()));
        assert_eq!(SimConfig::paper_scale().validate(), Ok(()));
    }

    #[test]
    fn bad_values_are_rejected_with_reasons() {
        let c = SimConfig { ttl: 0, ..SimConfig::default() };
        assert!(c.validate().unwrap_err().0.contains("ttl"));

        let c = SimConfig { good_capacity_qpm: 0, ..SimConfig::default() };
        assert!(c.validate().unwrap_err().0.contains("capacity"));

        let c = SimConfig { capacity_spread: 2.0, ..SimConfig::default() };
        assert!(c.validate().unwrap_err().0.contains("spread"));

        let c = SimConfig { fair_share_factor: 0.5, ..SimConfig::default() };
        assert!(c.validate().unwrap_err().0.contains("fair_share"));

        let c = SimConfig { response_timeout_secs: 0.0, ..SimConfig::default() };
        assert!(c.validate().is_err());

        let c = SimConfig {
            faults: FaultConfig { loss: 1.2, ..FaultConfig::default() },
            ..SimConfig::default()
        };
        assert!(c.validate().unwrap_err().0.contains("loss"));

        let mut bad_session = SessionConfig::steady_state(100, 5.0);
        bad_session.crash_fraction = -0.1;
        let c = SimConfig { session: Some(bad_session), ..SimConfig::default() };
        assert!(c.validate().unwrap_err().0.contains("crash_fraction"));

        // A cap below the starting population strands the event stream.
        let c = SimConfig {
            session: Some(SessionConfig { max_peers: 10, ..SessionConfig::steady_state(100, 5.0) }),
            ..SimConfig::default()
        };
        assert!(c.validate().unwrap_err().0.contains("max_peers"));

        let c = SimConfig {
            session: Some(SessionConfig::steady_state(2_000, 10.0)),
            ..SimConfig::default()
        };
        assert_eq!(c.validate(), Ok(()));
    }
}
