//! Property-based tests of whole-engine invariants on tiny random
//! configurations.

use ddp_sim::{NoDefense, ReportBehavior, SimConfig, Simulation};
use ddp_topology::{NodeId, TopologyConfig, TopologyModel};
use ddp_workload::LifetimeModel;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Setup {
    n: usize,
    seed: u64,
    ticks: usize,
    attackers: Vec<u32>,
    churn: bool,
    short_lives: bool,
}

fn setup() -> impl Strategy<Value = Setup> {
    (20usize..70, any::<u64>(), 1usize..5, any::<bool>(), any::<bool>()).prop_flat_map(
        |(n, seed, ticks, churn, short_lives)| {
            proptest::collection::vec(0..n as u32, 0..4).prop_map(move |attackers| Setup {
                n,
                seed,
                ticks,
                attackers,
                churn,
                short_lives,
            })
        },
    )
}

fn build(s: &Setup) -> Simulation<NoDefense> {
    let mut cfg = SimConfig {
        topology: TopologyConfig { n: s.n, model: TopologyModel::BarabasiAlbert { m: 3 } },
        churn: s.churn,
        ..SimConfig::default()
    };
    if s.short_lives {
        cfg.lifetime = LifetimeModel::Exponential { mean_min: 2.0 };
    }
    let mut sim = Simulation::new(cfg, NoDefense, s.seed);
    for &a in &s.attackers {
        sim.make_attacker(NodeId(a), ReportBehavior::Honest);
    }
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The overlay's structural invariants survive any run (churn, attacks,
    /// rewiring, counter mirrors).
    #[test]
    fn overlay_invariants_survive_runs(s in setup()) {
        let mut sim = build(&s);
        for _ in 0..s.ticks {
            sim.step();
            prop_assert!(sim.overlay().check_invariants().is_ok(),
                "{:?}", sim.overlay().check_invariants());
        }
    }

    /// Offline peers hold no edges; online good peers keep the minimum
    /// degree the maintenance loop promises (when anyone is reachable).
    #[test]
    fn connectivity_contract(s in setup()) {
        let mut sim = build(&s);
        for _ in 0..s.ticks {
            sim.step();
        }
        for i in 0..s.n {
            let node = NodeId(i as u32);
            if !sim.is_online(node) {
                prop_assert_eq!(sim.overlay().degree(node), 0,
                    "offline node {} still has edges", node);
            }
        }
    }

    /// Series lengths equal the number of ticks, and summaries are finite.
    #[test]
    fn reporting_shape(s in setup()) {
        let sim = build(&s);
        let res = sim.run(s.ticks);
        prop_assert_eq!(res.series.success_rate.len(), s.ticks);
        prop_assert_eq!(res.series.traffic.len(), s.ticks);
        prop_assert!(res.summary.success_rate_mean.is_finite());
        prop_assert!((0.0..=1.0).contains(&res.summary.success_rate_mean));
        prop_assert!(res.summary.traffic_per_tick >= 0.0);
        // No defense -> no cuts, and the log agrees.
        prop_assert!(res.cut_log.is_empty());
        prop_assert_eq!(res.summary.good_peers_cut, 0);
    }

    /// Bit-for-bit determinism of the full engine.
    #[test]
    fn engine_is_deterministic(s in setup()) {
        let a = build(&s).run(s.ticks);
        let b = build(&s).run(s.ticks);
        prop_assert_eq!(a.series.success_rate, b.series.success_rate);
        prop_assert_eq!(a.series.traffic, b.series.traffic);
        prop_assert_eq!(a.summary, b.summary);
    }
}
