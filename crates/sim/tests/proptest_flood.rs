//! Property-based tests of the flooding engine's conservation and budget
//! invariants on random overlays.

use ddp_metrics::TrafficAccumulator;
use ddp_sim::flood::{FirstHop, FloodEnv};
use ddp_sim::{FloodEngine, ForwardingPolicy, Overlay};
use ddp_topology::{DynamicGraph, NodeId};
use ddp_workload::BandwidthClass;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct World {
    n: usize,
    edges: Vec<(u32, u32)>,
    capacities: Vec<u32>,
    origin: u32,
    count: u32,
    ttl: u8,
}

fn world() -> impl Strategy<Value = World> {
    (4usize..24).prop_flat_map(|n| {
        let max = n as u32;
        (
            proptest::collection::vec((0..max, 0..max), 3..40),
            proptest::collection::vec(0u32..3_000, n),
            0..max,
            1u32..30_000,
            1u8..8,
        )
            .prop_map(move |(edges, capacities, origin, count, ttl)| World {
                n,
                edges,
                capacities,
                origin,
                count,
                ttl,
            })
    })
}

struct Built {
    overlay: Overlay,
    node_used: Vec<u32>,
    capacity: Vec<u32>,
    online: Vec<bool>,
    prev_util: Vec<f32>,
    traffic: TrafficAccumulator,
}

fn build(w: &World) -> Built {
    let mut g = DynamicGraph::new(w.n);
    for &(a, b) in &w.edges {
        g.add_edge(NodeId(a), NodeId(b));
    }
    // Ethernet class everywhere: node capacity is the binding constraint so
    // the conservation algebra below is exact.
    let overlay = Overlay::new(g, &vec![BandwidthClass::Ethernet; w.n]);
    Built {
        overlay,
        node_used: vec![0; w.n],
        capacity: w.capacities.clone(),
        online: vec![true; w.n],
        prev_util: vec![0.0; w.n],
        traffic: TrafficAccumulator::default(),
    }
}

fn flood(b: &mut Built, w: &World) -> ddp_sim::FloodOutcome {
    let mut env = FloodEnv {
        node_used: &mut b.node_used,
        capacity: &b.capacity,
        online: &b.online,
        prev_util: &b.prev_util,
        traffic: &mut b.traffic,
        policy: ForwardingPolicy::Fifo,
        fair_share_factor: 2.0,
        hop_latency_secs: 0.05,
        proc_delay_secs: 0.004,
    };
    let mut fe = FloodEngine::new(w.n);
    fe.flood(
        &mut b.overlay,
        NodeId(w.origin),
        FirstHop::All { count: w.count },
        w.ttl,
        None,
        &mut env,
    )
}

proptest! {
    /// Budgets are never exceeded: processed <= capacity at every node.
    #[test]
    fn node_budgets_hold(w in world()) {
        let mut b = build(&w);
        flood(&mut b, &w);
        for i in 0..w.n {
            prop_assert!(b.node_used[i] <= b.capacity[i],
                "node {i} used {} > capacity {}", b.node_used[i], b.capacity[i]);
        }
    }

    /// Everything sent on the wire either gets processed somewhere or is
    /// accounted as dropped at a link, a saturated node, or a dup filter —
    /// plus the copies never sent because the first hop was link-capped.
    #[test]
    fn wire_conservation(w in world()) {
        let mut b = build(&w);
        flood(&mut b, &w);
        let total_wire: u64 = (0..w.n)
            .map(|i| b.overlay.total_sent(NodeId(i.try_into().unwrap())))
            .sum();
        prop_assert_eq!(total_wire, b.traffic.query_hops);
        let processed: u64 = b.node_used.iter().map(|&c| c as u64).sum();
        // wire = processed + (drops recorded at/after the wire) - (drops
        // counted before transmission). The engine books both kinds into
        // `dropped`, so wire <= processed + dropped and processed <= wire.
        prop_assert!(processed <= total_wire,
            "processed {processed} cannot exceed wire volume {total_wire}");
        prop_assert!(total_wire <= processed + b.traffic.dropped,
            "wire {} > processed {} + dropped {}", total_wire, processed, b.traffic.dropped);
    }

    /// Accepted (dup-filtered) volume never exceeds wire volume on any edge.
    #[test]
    fn accepted_is_a_subset_of_sent(w in world()) {
        let mut b = build(&w);
        flood(&mut b, &w);
        for i in 0..w.n {
            let u = NodeId(i as u32);
            for slot in 0..b.overlay.degree(u) {
                prop_assert!(b.overlay.accepted_via(u, slot) <= b.overlay.sent_via(u, slot));
            }
        }
    }

    /// Flooding twice with the same inputs gives identical outcomes
    /// (determinism of the hot path).
    #[test]
    fn flood_is_deterministic(w in world()) {
        let mut b1 = build(&w);
        let o1 = flood(&mut b1, &w);
        let mut b2 = build(&w);
        let o2 = flood(&mut b2, &w);
        prop_assert_eq!(o1, o2);
        prop_assert_eq!(b1.node_used, b2.node_used);
        prop_assert_eq!(b1.traffic, b2.traffic);
    }

    /// The overlay's counter mirrors stay aligned through a flood.
    #[test]
    fn overlay_invariants_after_flood(w in world()) {
        let mut b = build(&w);
        flood(&mut b, &w);
        prop_assert!(b.overlay.check_invariants().is_ok());
    }
}
