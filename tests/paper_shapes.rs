//! The paper's headline quantitative *shapes*, at reduced scale.
//!
//! We do not chase the paper's absolute numbers (their substrate was a
//! 20,000-peer BRITE overlay driven by KaZaA traces on 2007 hardware); these
//! tests pin down the relationships the paper reports: who wins, in which
//! direction, and roughly by how much. EXPERIMENTS.md records the full
//! paper-vs-measured comparison.

use ddpolice::experiments::runners::{agent_sweep, ct_sweep, SweepRow};
use ddpolice::experiments::{DefenseKind, ExpOptions, Scenario};
use ddpolice::testbed::ChainExperiment;
use std::sync::OnceLock;

fn opts() -> ExpOptions {
    ExpOptions { peers: 800, ticks: 10, seed: 21, agents: 40, ..ExpOptions::default() }
}

/// The §3.6 sweep is the most expensive fixture; compute it once and share
/// it across the shape tests.
fn sweep() -> &'static [SweepRow] {
    static SWEEP: OnceLock<Vec<SweepRow>> = OnceLock::new();
    SWEEP.get_or_init(|| agent_sweep(&opts()))
}

/// §3.6 / Figure 9: "ten to twenty (<0.1%) compromised peers will double the
/// total traffic" — at our scale a comparable handful of agents at least
/// doubles it (agents are a larger fraction here, so amplification is at
/// least as strong).
#[test]
fn few_agents_double_the_traffic() {
    let rows = sweep();
    let ten = rows.iter().find(|r| r.agents == 10).expect("k = 10 swept");
    let amp = ten.undefended.traffic_per_tick / ten.baseline.traffic_per_tick;
    assert!(amp >= 2.0, "10 agents only amplified traffic {amp:.2}x");
}

/// Figure 9's DD-POLICE curve: defended traffic stays close to the no-attack
/// baseline (the paper: "comparable average response time and success rate
/// with slightly higher average traffic cost").
#[test]
fn dd_police_restores_traffic_to_near_baseline() {
    let rows = sweep();
    let big = rows.last().unwrap();
    assert!(
        big.defended.traffic_per_tick < big.undefended.traffic_per_tick * 0.6,
        "defended {} vs undefended {}",
        big.defended.traffic_per_tick,
        big.undefended.traffic_per_tick
    );
}

/// Figure 10: response time grows under attack; the paper reports a 2.4x
/// increase at 100 agents. Direction and a >1.3x magnitude must hold.
#[test]
fn attack_slows_responses() {
    let rows = sweep();
    let big = rows.last().unwrap();
    let slowdown = big.undefended.response_secs / big.baseline.response_secs;
    assert!(slowdown > 1.3, "slowdown only {slowdown:.2}x");
    // The defense keeps responses in the baseline's neighborhood. (Means are
    // survivorship-biased: the undefended network only *completes* nearby
    // queries, so its mean can sit deceptively low — allow slack.)
    assert!(
        big.defended.response_secs < big.undefended.response_secs * 1.25,
        "defended {} vs undefended {}",
        big.defended.response_secs,
        big.undefended.response_secs
    );
}

/// Figure 11: "up to 89.7% of queries could fail" — the undefended success
/// rate collapses (here: loses at least 40% of the baseline) at the largest
/// agent count, and DD-POLICE restores the bulk of the baseline. The bound is
/// relative to the measured baseline rather than absolute so it pins the
/// paper's shape without being knife-edge sensitive to the RNG backend.
#[test]
fn attack_collapses_success_and_defense_restores_it() {
    let rows = sweep();
    let big = rows.last().unwrap();
    assert!(
        big.undefended.success < big.baseline.success * 0.6,
        "undefended success {} vs baseline {}",
        big.undefended.success,
        big.baseline.success
    );
    assert!(
        big.defended.success > big.baseline.success * 0.6,
        "defended {} vs baseline {}",
        big.defended.success,
        big.baseline.success
    );
}

/// Figure 13: the false negative (good peers wrongly cut) must not increase
/// with the cut threshold — raising CT makes peers harder to convict.
#[test]
fn false_negatives_fall_as_ct_rises() {
    let o = opts();
    let rows = ct_sweep(&o, &[1.0, 5.0, 12.0]);
    assert!(
        rows[0].false_negative >= rows[2].false_negative,
        "FN at CT=1 ({}) should be >= FN at CT=12 ({})",
        rows[0].false_negative,
        rows[2].false_negative
    );
}

/// §2.3 / Figures 5–6: the single-peer capacity knee at 15,000/min and the
/// ~47% terminal drop rate.
#[test]
fn testbed_knee_and_terminal_drop_rate() {
    let e = ChainExperiment::default();
    assert_eq!(e.point(15_000).dropped_qpm, 0);
    assert!(e.point(16_000).dropped_qpm > 0);
    let terminal = e.point(29_000).drop_rate;
    assert!((0.45..0.50).contains(&terminal), "terminal drop {terminal}");
}

/// §3.7.2: with everything at defaults, a 2-minute exchange period and
/// CT = 5 keep the system serviceable under a large attack.
#[test]
fn paper_default_configuration_works() {
    let dr = Scenario::builder()
        .peers(800)
        .ticks(12)
        .attackers(40)
        .defense(DefenseKind::DdPolice { cut_threshold: 5.0 })
        .seed(33)
        .build()
        .run_with_damage();
    assert!(
        dr.attacked.summary.success_rate_stable > 0.5,
        "stabilized success {} too low",
        dr.attacked.summary.success_rate_stable
    );
}
