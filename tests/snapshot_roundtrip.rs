//! Whole-engine snapshot/resume properties, driven by random scenarios.
//!
//! The oracle crate already proves a restored engine is *observationally*
//! equivalent under lockstep comparison; these tests attack the remaining
//! claims from the outside, through the facade:
//!
//! * **Bit-exact resume** — for random [`ScenarioSpec`]s (faults, churn,
//!   whitewashing, collusion, every protocol knob) and a random snapshot
//!   tick, snapshot → fresh engine → restore → run-to-end produces the
//!   same summary, series, cut log, verdict log, and session stats as the
//!   uninterrupted run, bit for bit.
//! * **File round-trip** — the same property through `write_snapshot_file`
//!   / `resume_from_file`, i.e. including the crash-safe container.
//! * **Corruption handling** — truncated, bit-flipped, and mislabeled
//!   snapshot files come back as the right typed [`SnapshotError`], never a
//!   panic, and a snapshot never restores into an engine with a different
//!   configuration.

use ddpolice::oracle::ScenarioSpec;
use ddpolice::police::DdPolice;
use ddpolice::sim::Simulation;
use ddpolice::snapshot::SnapshotError;
use proptest::prelude::*;
use std::path::PathBuf;

fn build(spec: &ScenarioSpec) -> Simulation<DdPolice> {
    let mut sim = spec.instantiate(DdPolice::new(spec.police_config(), spec.peers));
    sim.defense_mut().set_force_fast_path(spec.force_fast_path);
    sim
}

/// Run `sim` up to the spec's tick count and finish it.
fn run_to_end(mut sim: Simulation<DdPolice>, ticks: u32) -> ddpolice::sim::RunResult {
    while sim.tick() < ticks {
        sim.step();
    }
    sim.finish()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ddp-snap-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.snap"))
}

/// One snapshot written to disk, for the corruption tests.
fn written_snapshot(tag: &str) -> (ScenarioSpec, PathBuf) {
    let spec = ScenarioSpec::random(7);
    let mut sim = build(&spec);
    for _ in 0..3 {
        sim.step();
    }
    let path = scratch(tag);
    sim.write_snapshot_file(&path).unwrap();
    (spec, path)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// In-memory snapshot/restore at a random tick is invisible to every
    /// output channel of the engine.
    #[test]
    fn resume_is_bit_exact_for_random_scenarios(
        fuzz_seed in any::<u64>(),
        cut_pct in 0u32..100,
    ) {
        let spec = ScenarioSpec::random(fuzz_seed);
        // Snapshot somewhere strictly inside the run.
        let snapshot_tick = 1 + (spec.ticks - 2) * cut_pct / 100;

        // Uninterrupted reference.
        let reference = run_to_end(build(&spec), spec.ticks);

        // Interrupted twin: run to the snapshot tick, serialize, restore
        // into a *fresh* engine, and let the replacement finish the run.
        let mut first = build(&spec);
        while first.tick() < snapshot_tick {
            first.step();
        }
        let bytes = first.save_snapshot().unwrap();
        let stats_at_cut = first.session_stats();
        drop(first);
        let mut resumed = build(&spec);
        resumed.restore_snapshot(&bytes).unwrap();
        prop_assert_eq!(resumed.tick(), snapshot_tick);
        let vlog = resumed.verdict_log().to_vec();
        prop_assert_eq!(resumed.session_stats(), stats_at_cut);
        let outcome = run_to_end(resumed, spec.ticks);

        prop_assert_eq!(&outcome.summary, &reference.summary);
        prop_assert_eq!(&outcome.series, &reference.series);
        prop_assert_eq!(&outcome.cut_log, &reference.cut_log);
        prop_assert_eq!(&outcome.verdict_log, &reference.verdict_log);
        // The restored mid-run state must also be self-consistent: the
        // verdict log at the boundary is a prefix of the final one.
        prop_assert!(vlog.len() <= outcome.verdict_log.len());
        prop_assert_eq!(&outcome.verdict_log[..vlog.len()], &vlog[..]);
    }

    /// The same property through the crash-safe file container.
    #[test]
    fn file_round_trip_is_bit_exact(fuzz_seed in any::<u64>()) {
        let spec = ScenarioSpec::random(fuzz_seed);
        let snapshot_tick = spec.ticks / 2;
        let path = scratch(&format!("prop-{fuzz_seed:016x}"));

        let reference = run_to_end(build(&spec), spec.ticks);

        let mut first = build(&spec);
        while first.tick() < snapshot_tick {
            first.step();
        }
        first.write_snapshot_file(&path).unwrap();
        drop(first);
        let mut resumed = build(&spec);
        resumed.resume_from_file(&path).unwrap();
        let outcome = run_to_end(resumed, spec.ticks);
        let _ = std::fs::remove_file(&path);

        prop_assert_eq!(&outcome.summary, &reference.summary);
        prop_assert_eq!(&outcome.series, &reference.series);
        prop_assert_eq!(&outcome.cut_log, &reference.cut_log);
    }
}

#[test]
fn snapshot_crosses_worker_counts_bit_exact() {
    // Worker count is an execution detail, never state: a snapshot written
    // mid-run under the parallel engine must be byte-identical to one
    // written serially, and must resume bit-exact at *any other* width.
    let spec = ScenarioSpec {
        peers: 100,
        agents: 5,
        readmission: true,
        hys_window: 2,
        hys_required: 2,
        ticks: 12,
        ..ScenarioSpec::default()
    };
    let snapshot_tick = 5;

    // Serial reference: per-tick hashes plus the uninterrupted outcome.
    let mut reference = build(&spec);
    reference.enable_hash_trace();
    while reference.tick() < spec.ticks {
        reference.step();
    }
    let reference_hashes = reference.hash_trace().to_vec();
    let reference = reference.finish();

    // Writers at both widths produce the same bytes.
    let write_at = |threads: usize| {
        let mut sim = build(&spec);
        sim.set_threads(threads);
        while sim.tick() < snapshot_tick {
            sim.step();
        }
        sim.save_snapshot().unwrap()
    };
    let serial_bytes = write_at(1);
    let parallel_bytes = write_at(4);
    assert_eq!(
        serial_bytes, parallel_bytes,
        "snapshot bytes must not depend on the writer's worker count"
    );

    // Resume the parallel-written snapshot at several different widths;
    // every continuation must match the serial reference tick for tick.
    for resume_threads in [1usize, 2, 8] {
        let mut resumed = build(&spec);
        resumed.restore_snapshot(&parallel_bytes).unwrap();
        resumed.set_threads(resume_threads);
        let mut hashes = Vec::new();
        while resumed.tick() < spec.ticks {
            resumed.step();
            hashes.push(resumed.state_hash());
        }
        assert_eq!(
            &reference_hashes[snapshot_tick as usize..],
            &hashes[..],
            "post-resume hash trail diverged at {resume_threads} threads"
        );
        let outcome = resumed.finish();
        assert_eq!(outcome.summary, reference.summary);
        assert_eq!(outcome.series, reference.series);
        assert_eq!(outcome.cut_log, reference.cut_log);
        assert_eq!(outcome.verdict_log, reference.verdict_log);
    }
}

#[test]
fn truncated_snapshot_is_a_typed_error() {
    let (spec, path) = written_snapshot("truncated");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
    let err = build(&spec).resume_from_file(&path).unwrap_err();
    assert!(matches!(err, SnapshotError::Truncated { .. }), "expected Truncated, got: {err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bit_flip_is_a_checksum_mismatch() {
    let (spec, path) = written_snapshot("bitflip");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let err = build(&spec).resume_from_file(&path).unwrap_err();
    assert!(
        matches!(err, SnapshotError::ChecksumMismatch { .. }),
        "expected ChecksumMismatch, got: {err}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn foreign_file_is_a_bad_magic_error() {
    let (spec, path) = written_snapshot("magic");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] = b'X';
    std::fs::write(&path, &bytes).unwrap();
    let err = build(&spec).resume_from_file(&path).unwrap_err();
    assert!(matches!(err, SnapshotError::BadMagic { .. }), "expected BadMagic, got: {err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn snapshot_refuses_an_engine_with_a_different_config() {
    let (_, path) = written_snapshot("context");
    // Same construction path, different scenario: peers/seed/knobs differ,
    // so the context fingerprint cannot match.
    let other = ScenarioSpec::random(8);
    let err = build(&other).resume_from_file(&path).unwrap_err();
    assert!(
        matches!(err, SnapshotError::ContextMismatch { .. }),
        "expected ContextMismatch, got: {err}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corruption_is_detected_before_the_engine_is_touched() {
    let (spec, path) = written_snapshot("survivor");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let mut sim = build(&spec);
    assert!(sim.resume_from_file(&path).is_err());
    // Container validation (checksum, magic, context) runs before any engine
    // mutation, so after a corrupt-file rejection the engine still runs from
    // tick 0 and matches a clean twin exactly.
    let clean = run_to_end(build(&spec), spec.ticks);
    let survivor = run_to_end(sim, spec.ticks);
    assert_eq!(survivor.summary, clean.summary);
    assert_eq!(survivor.series, clean.series);
    let _ = std::fs::remove_file(&path);
}
