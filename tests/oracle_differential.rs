//! Workspace-level differential checks: the optimized engine against the
//! naive reference oracle, plus replay of every committed reproducer under
//! `tests/repro/`.
//!
//! The deep per-feature suite lives in `crates/core/tests/`; this file is
//! the facade-level guarantee that `cargo test -q` at the repo root always
//! exercises the oracle equivalence and that committed reproducers stay
//! replayable as the engine evolves.

use ddpolice::oracle::{run_lockstep, ScenarioSpec};

#[test]
fn engine_matches_oracle_on_seeded_scenarios() {
    for fuzz_seed in 100..115 {
        let spec = ScenarioSpec::random(fuzz_seed);
        if let Err(d) = run_lockstep(&spec) {
            panic!("fuzz seed {fuzz_seed} diverged at {d}\nspec:\n{}", spec.to_json());
        }
    }
}

#[test]
fn committed_reproducers_replay_exactly() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/repro");
    let mut replayed = 0;
    for entry in std::fs::read_dir(dir).expect("tests/repro exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable reproducer");
        let spec = ScenarioSpec::from_json(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        // Specs round-trip bit-exactly, so a hand-edited file that drifted
        // from canonical form is re-serialized identically.
        assert_eq!(
            ScenarioSpec::from_json(&spec.to_json()).unwrap(),
            spec,
            "{} lost information in a round trip",
            path.display()
        );
        let result = run_lockstep(&spec);
        if spec.force_fast_path {
            // Mutation-check reproducers are *expected* to diverge: they
            // document that the harness catches a genuinely broken gate.
            assert!(
                result.is_err(),
                "{} no longer diverges — the forced fast path learned the slow path's \
                 behavior; regenerate the mutation-check reproducer",
                path.display()
            );
        } else {
            // Reproducers of real (since-fixed) engine bugs must stay clean.
            if let Err(d) = result {
                panic!("{} regressed: {d}", path.display());
            }
        }
        replayed += 1;
    }
    assert!(replayed >= 1, "no reproducers found in {dir}");
}
