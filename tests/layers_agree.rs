//! Cross-layer agreement: the aggregate evaluation simulator (`ddp-sim` +
//! `ddp-police`) and the protocol-level reference implementation
//! (`ddp-servent`) must tell the same qualitative story on a comparable
//! scenario — an attacker is identified and isolated within minutes, the
//! wrongful-cut collateral stays a small minority, and service survives.

use ddpolice::experiments::{DefenseKind, Scenario};
use ddpolice::servent::{Harness, HarnessConfig, ServentRole};
use ddpolice::topology::{NodeId, TopologyConfig, TopologyModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MINUTES: usize = 4;

/// Aggregate layer: one agent on a small overlay, DD-POLICE defaults.
fn aggregate_outcome() -> (bool, u64, f64) {
    let report = Scenario::builder()
        .peers(120)
        .ticks(MINUTES)
        .attackers(1)
        .defense(DefenseKind::DdPolice { cut_threshold: 5.0 })
        .churn(false)
        .seed(3)
        .build()
        .run();
    let attacker_cut = report.summary.attackers_never_cut == 0;
    (attacker_cut, report.summary.errors.false_negative, report.summary.success_rate_stable)
}

/// Protocol layer: same shape of scenario at servent scale.
fn protocol_outcome() -> (bool, u64, f64) {
    let graph = TopologyConfig { n: 30, model: TopologyModel::BarabasiAlbert { m: 3 } }
        .generate(&mut StdRng::seed_from_u64(3));
    let attacker = NodeId(4);
    let role = ServentRole::FloodingAgent { rate_qpm: 1_500, respond_reports: true };
    let mut h = Harness::new(&graph, &[(attacker, role)], HarnessConfig::default(), 3);
    h.run_minutes(MINUTES as u64);
    let r = h.report();
    let isolated = h.servents[attacker.index()].neighbors().is_empty();
    let wrongly_cut_peers = {
        let mut peers: Vec<NodeId> =
            r.cuts.iter().filter(|&&(_, _, s)| s != attacker).map(|&(_, _, s)| s).collect();
        peers.sort_unstable();
        peers.dedup();
        peers.len() as u64
    };
    let service = if r.issued == 0 { 1.0 } else { r.resolved as f64 / r.issued as f64 };
    (isolated, wrongly_cut_peers, service)
}

#[test]
fn both_layers_identify_and_isolate_the_agent() {
    let (agg_cut, _, _) = aggregate_outcome();
    let (proto_cut, _, _) = protocol_outcome();
    assert!(agg_cut, "aggregate layer failed to identify the agent");
    assert!(proto_cut, "protocol layer failed to isolate the agent");
}

#[test]
fn both_layers_keep_collateral_a_small_minority() {
    let (_, agg_fn, _) = aggregate_outcome();
    let (_, proto_fn, _) = protocol_outcome();
    assert!(agg_fn <= 12, "aggregate layer wrongly cut {agg_fn} peers of 120");
    assert!(proto_fn <= 4, "protocol layer wrongly cut {proto_fn} peers of 30");
}

#[test]
fn both_layers_keep_the_service_alive() {
    let (_, _, agg_service) = aggregate_outcome();
    let (_, _, proto_service) = protocol_outcome();
    assert!(agg_service > 0.5, "aggregate stabilized success {agg_service}");
    assert!(proto_service > 0.5, "protocol resolution rate {proto_service}");
}
