//! Cross-crate integration: the full attack → detect → recover pipeline.

use ddpolice::attack::CheatStrategy;
use ddpolice::experiments::{DefenseKind, Scenario};

fn base(defense: DefenseKind, agents: usize, seed: u64) -> Scenario {
    Scenario::builder().peers(600).ticks(12).attackers(agents).defense(defense).seed(seed).build()
}

#[test]
fn undefended_attack_collapses_the_system() {
    let dr = base(DefenseKind::None, 30, 1).run_with_damage();
    assert!(
        dr.stable_damage() > 0.5,
        "30 agents on 600 peers without defense must be devastating: {}",
        dr.stable_damage()
    );
    // All agents survive to the end.
    assert_eq!(dr.attacked.summary.errors.false_positive, 30);
}

#[test]
fn dd_police_detects_and_recovers() {
    let dr = base(DefenseKind::DdPolice { cut_threshold: 5.0 }, 30, 1).run_with_damage();
    assert!(
        dr.stable_damage() < 0.30,
        "DD-POLICE should contain the attack: stable damage {}",
        dr.stable_damage()
    );
    assert!(dr.attacked.summary.attackers_cut >= 30, "every agent cut at least once");
    // Detection errors stay bounded: 30 agents are 5% of this overlay (the
    // paper's most extreme density); Figure 13 reports errors in the tens
    // out of 2,000 peers at CT = 5 under a comparable 5% attack.
    assert!(
        dr.attacked.summary.errors.false_negative < 90,
        "too many innocent peers cut: {:?}",
        dr.attacked.summary.errors
    );
}

#[test]
fn recovery_time_is_short_with_default_ct() {
    // A moderate attack (2% of peers compromised — the paper's sweeps top
    // out at 1% on 20,000 peers) recovers within a few minutes at CT = 5.
    let dr = base(DefenseKind::DdPolice { cut_threshold: 5.0 }, 12, 3).run_with_damage();
    match dr.recovery_ticks {
        Some(t) => assert!(t <= 6, "recovery took {t} minutes; the paper stresses it is short"),
        None => {
            // Damage may never have reached the 20% trigger on this seed —
            // that is an even stronger defense outcome.
            assert!(dr.damage.max() < 0.2, "damage {:?} never recovered", dr.damage.values);
        }
    }
}

#[test]
fn every_cheating_strategy_still_ends_with_agents_cut() {
    for strategy in CheatStrategy::all() {
        let dr = base(DefenseKind::DdPolice { cut_threshold: 5.0 }, 10, 5).run_with_damage();
        let _ = strategy; // strategy applied below
        let report = Scenario {
            cheat: strategy,
            ..base(DefenseKind::DdPolice { cut_threshold: 5.0 }, 10, 5)
        }
        .run();
        assert!(
            report.summary.attackers_cut > 0,
            "strategy {:?} produced no cuts",
            strategy.label()
        );
        drop(dr);
    }
}

#[test]
fn naive_rate_limiting_hurts_more_good_peers_than_dd_police() {
    let naive = base(DefenseKind::NaiveRateLimit { threshold_qpm: 500 }, 20, 9).run();
    let police = base(DefenseKind::DdPolice { cut_threshold: 5.0 }, 20, 9).run();
    assert!(
        naive.summary.errors.false_negative > police.summary.errors.false_negative,
        "naive {} vs dd-police {} wrongly cut peers",
        naive.summary.errors.false_negative,
        police.summary.errors.false_negative
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let a = base(DefenseKind::DdPolice { cut_threshold: 5.0 }, 15, 11).run_with_damage();
    let b = base(DefenseKind::DdPolice { cut_threshold: 5.0 }, 15, 11).run_with_damage();
    assert_eq!(a.damage, b.damage);
    assert_eq!(a.attacked.summary, b.attacked.summary);
    assert_eq!(a.baseline.summary, b.baseline.summary);
}
