//! Integration between the wire protocol and the simulated defense: the
//! values DD-POLICE acts on survive a trip through the Table 1 encoding.

use ddpolice::protocol::*;
use ddpolice::sim::SECS_PER_TICK;
use std::net::Ipv4Addr;

/// Encode the per-minute counters a peer would report, decode them, and
/// recompute the single indicator — byte-identical semantics.
#[test]
fn neighbor_traffic_roundtrip_preserves_indicator_inputs() {
    let q = 10u32;
    // Reporter m's counters about suspect j.
    let reports = [(480u32, 20_000u32), (312, 19_544), (7, 4_200)];
    let mut sum_into_suspect = 0.0;
    for (i, &(out_q, in_q)) in reports.iter().enumerate() {
        let nt = NeighborTraffic {
            source_ip: Ipv4Addr::new(10, 0, 0, i as u8 + 1),
            suspect_ip: Ipv4Addr::new(10, 0, 0, 99),
            timestamp: (i as u32 + 1) * SECS_PER_TICK,
            outgoing_queries: out_q,
            incoming_queries: in_q,
        };
        let msg = Message::new(Guid::derived(9, i as u64), 1, Payload::NeighborTraffic(nt));
        let mut wire = encode_message(&msg);
        let back = decode_message(&mut wire).unwrap();
        let Payload::NeighborTraffic(got) = back.payload else { panic!("wrong payload kind") };
        assert_eq!(got, nt);
        sum_into_suspect += got.outgoing_queries as f64;
    }
    // Observer's own link saw 20,000/min from the suspect.
    let s = ddpolice::police::indicator::single_indicator(20_000.0, sum_into_suspect, q);
    assert!(s > 5.0, "the decoded reports must still convict: s = {s}");
}

/// A full neighbor-list exchange message for a realistic degree fits in a
/// fraction of a kilobyte — the §3.1 overhead argument.
#[test]
fn neighbor_list_messages_are_small() {
    let msg = Message::new(
        Guid::derived(1, 1),
        1,
        Payload::NeighborList(NeighborList {
            neighbors: (0..6).map(PeerAddr::from_node_index).collect(),
        }),
    );
    assert!(msg.wire_len() < 100, "6-neighbor list costs {} bytes", msg.wire_len());
    // Even a hub with 50 neighbors stays in one UDP datagram.
    let hub = Message::new(
        Guid::derived(1, 2),
        1,
        Payload::NeighborList(NeighborList {
            neighbors: (0..50).map(PeerAddr::from_node_index).collect(),
        }),
    );
    assert!(hub.wire_len() < 400);
}

/// The Bye message DD-POLICE sends on disconnection carries the reason code.
#[test]
fn bye_reason_codes_roundtrip() {
    for code in [Bye::CODE_DDOS_SUSPECT, Bye::CODE_LIST_INCONSISTENT] {
        let msg = Message::new(
            Guid::derived(2, code as u64),
            1,
            Payload::Bye(Bye { code, reason: "cut threshold exceeded".into() }),
        );
        let mut wire = encode_message(&msg);
        let back = decode_message(&mut wire).unwrap();
        let Payload::Bye(b) = back.payload else { panic!("wrong payload") };
        assert_eq!(b.code, code);
    }
}

/// Every payload kind used by the defense parses from its descriptor byte.
#[test]
fn defense_payload_kinds_are_registered() {
    assert_eq!(PayloadKind::from_byte(0x83).unwrap(), PayloadKind::NeighborTraffic);
    assert_eq!(PayloadKind::from_byte(0x85).unwrap(), PayloadKind::NeighborList);
    assert_eq!(PayloadKind::from_byte(0x02).unwrap(), PayloadKind::Bye);
    assert!(PayloadKind::from_byte(0x84).is_err(), "0x84 stays unassigned");
}
