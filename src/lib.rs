//! # ddpolice — a reproduction of DD-POLICE (ICPP 2007)
//!
//! *"Defending P2Ps from Overlay Flooding-based DDoS"* — Yunhao Liu,
//! Xiaomei Liu, Chen Wang, Li Xiao.
//!
//! This facade crate re-exports the whole workspace as one coherent public
//! API. The pieces:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`topology`] | `ddp-topology` | BRITE-substitute overlay generators, graph structures |
//! | [`protocol`] | `ddp-protocol` | Gnutella-style wire protocol incl. the `Neighbor_Traffic` (0x83) message |
//! | [`workload`] | `ddp-workload` | query/churn/bandwidth workload models |
//! | [`metrics`]  | `ddp-metrics` | damage rate, success rate, error and recovery-time accounting |
//! | [`sim`]      | `ddp-sim` | the discrete-time overlay flooding simulator |
//! | [`attack`]   | `ddp-attack` | overlay DDoS agent models and cheating strategies |
//! | [`police`]   | `ddp-police` | **the paper's contribution**: DD-POLICE plus baseline defenses |
//! | [`oracle`]   | `ddp-oracle` | naive reference model of DD-POLICE + differential fuzz harness |
//! | [`testbed`]  | `ddp-testbed` | the §2.3 single-peer capacity testbed (Figures 5–6) |
//! | [`dht`] | `ddp-dht` | Chord-like structured overlay (the paper's §5 future work) |
//! | [`servent`] | `ddp-servent` | protocol-level reference peer: wire messages on every hop |
//! | [`snapshot`] | `ddp-snapshot` | crash-safe checkpoint container + byte codec |
//! | [`experiments`] | `ddp-experiments` | one runner per paper table/figure |
//!
//! ## Quickstart
//!
//! ```
//! use ddpolice::experiments::{Scenario, DefenseKind};
//!
//! // A small overlay, 30 simulated minutes, 10 DDoS agents, DD-POLICE on.
//! let report = Scenario::builder()
//!     .peers(500)
//!     .ticks(30)
//!     .attackers(10)
//!     .defense(DefenseKind::DdPolice { cut_threshold: 5.0 })
//!     .seed(42)
//!     .build()
//!     .run();
//! assert!(report.summary.success_rate_mean > 0.0);
//! ```

pub use ddp_attack as attack;
pub use ddp_dht as dht;
pub use ddp_experiments as experiments;
pub use ddp_metrics as metrics;
pub use ddp_oracle as oracle;
pub use ddp_police as police;
pub use ddp_protocol as protocol;
pub use ddp_servent as servent;
pub use ddp_sim as sim;
pub use ddp_snapshot as snapshot;
pub use ddp_testbed as testbed;
pub use ddp_topology as topology;
pub use ddp_workload as workload;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use ddp_attack::CheatStrategy;
    pub use ddp_dht::{DhtConfig, DhtSimulation};
    pub use ddp_experiments::{DefenseKind, ExpOptions, Scenario};
    pub use ddp_metrics::summary::RunSummary;
    pub use ddp_police::{DdPolice, DdPoliceConfig, ExchangePolicy, NaiveRateLimit};
    pub use ddp_servent::{Harness, HarnessConfig, Servent, ServentRole};
    pub use ddp_sim::config::SimConfig;
    pub use ddp_sim::{ListBehavior, ReportBehavior, Simulation};
    pub use ddp_topology::{NodeId, TopologyConfig, TopologyModel};
}
